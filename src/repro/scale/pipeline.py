"""The hierarchical sharded design pipeline: partition -> design -> stitch.

:func:`design_sharded` is the scaling layer over the Designer registry: it
partitions an internet-scale instance into ISP/metro shards
(:mod:`repro.scale.partition`), designs every shard independently through any
registered inner strategy -- fanned out over worker processes via
:func:`repro.api.design_batch`, which rides
:func:`repro.analysis.runner.execute_tasks` and therefore returns shard
results in shard order regardless of ``jobs`` -- and stitches the shard
designs back together (:mod:`repro.scale.stitch`) before re-auditing the
merged solution against the *full* problem.

Strategy names: any registered solution-producing strategy ``X`` is available
as ``"sharded:X"`` through :func:`repro.api.get_designer`; the designer is
materialised on first use by :func:`make_sharded_designer`.  Options
(``request.options``):

``shards``
    Target shard count, or ``"auto"`` (default; see
    :func:`repro.scale.partition.resolve_shard_count`).
``jobs``
    Worker processes for the per-shard fan-out: an int, ``"auto"`` (all
    cores) or 1 (default; inline, no pool).
``partitioner``
    ``"auto"`` (default), ``"metro"``, ``"isp"`` or ``"hash"``.
``stitch_repair``
    Run the global cross-shard repair pass after merging (default True).
``inner_options``
    Options dict forwarded to every per-shard inner request.

Determinism contract: the partition is a pure function of the problem, each
shard request derives its seed from the request seed and the shard index via
``numpy.random.SeedSequence``, the executor preserves shard order, and the
stitch stage draws no randomness -- so for a fixed request seed the merged
design is bit-identical across ``jobs`` settings and machines.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.audit import audit_solution
from repro.api.batch import design_batch
from repro.api.registry import RegisteredDesigner, get_designer
from repro.api.types import (
    DesignRequest,
    DesignResult,
    parameters_from_dict,
    parameters_to_dict,
)
from repro.scale.partition import PartitionPlan, build_partition
from repro.scale.stitch import stitch_solutions

#: Prefix of dynamically materialised sharded strategies.
SHARDED_PREFIX = "sharded:"


def shard_seed(base_seed: int | None, shard_index: int) -> int | None:
    """Derive the deterministic per-shard seed from the request seed.

    ``None`` stays ``None`` (fresh entropy per shard, matching the monolithic
    pipeline's behaviour for seedless requests); otherwise the seed comes from
    a :class:`numpy.random.SeedSequence` over ``(base_seed, shard_index)``, so
    shards draw independent streams and the mapping is stable across runs,
    machines and ``jobs`` settings.
    """
    if base_seed is None:
        return None
    return int(
        np.random.SeedSequence([int(base_seed), shard_index]).generate_state(1)[0]
        % (2**31)
    )


def _sharded_options(request: DesignRequest) -> dict:
    defaults = {
        "shards": "auto",
        "jobs": 1,
        "partitioner": "auto",
        "stitch_repair": True,
        "inner_options": {},
    }
    unknown = sorted(set(request.options) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for strategy {request.strategy!r} "
            f"(accepted: {sorted(defaults)})"
        )
    return {**defaults, **request.options}


def design_sharded(
    request: DesignRequest,
    inner: RegisteredDesigner,
    plan: PartitionPlan | None = None,
) -> DesignResult:
    """Run the partition -> per-shard design -> stitch -> audit pipeline.

    ``plan`` lets a caller that already holds the partition -- the serving
    cache or a long-lived :class:`repro.serve.DesignSession` -- skip the
    grouping/extraction pass.  The plan must have been built (or rebound via
    :func:`repro.scale.partition.rebind_partition`) against *this* request's
    problem with the same partitioner/shards options; since the partition is
    a pure function of those inputs, a supplied plan cannot change the
    design, only the ``partition`` stage time.
    """
    options = _sharded_options(request)
    problem = request.problem

    start = time.perf_counter()
    if plan is None:
        plan = build_partition(
            problem, partitioner=options["partitioner"], shards=options["shards"]
        )
    partition_seconds = time.perf_counter() - start

    base_parameters = parameters_to_dict(request.parameters)
    shard_requests = []
    for index, shard in enumerate(plan.shards):
        parameters = dict(base_parameters)
        parameters["rounding"] = dict(parameters["rounding"])
        parameters["rounding"]["seed"] = shard_seed(request.seed, index)
        shard_requests.append(
            DesignRequest(
                problem=shard.problem,
                parameters=parameters_from_dict(parameters),
                strategy=inner.name,
                options=dict(options["inner_options"]),
                request_id=shard.shard_id,
            )
        )

    start = time.perf_counter()
    shard_results = design_batch(shard_requests, jobs=options["jobs"])
    design_seconds = time.perf_counter() - start

    start = time.perf_counter()
    solution, stitch_report = stitch_solutions(
        problem,
        plan,
        [result.solution for result in shard_results],
        repair=options["stitch_repair"],
        fanout_slack=request.parameters.repair_fanout_slack,
    )
    stitch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    audit = audit_solution(problem, solution)
    audit_seconds = time.perf_counter() - start

    shard_bounds = [result.lower_bound for result in shard_results]
    metadata = {
        "inner_strategy": inner.name,
        "partitioner": plan.partitioner,
        "jobs": str(options["jobs"]),
        **stitch_report.as_metadata(),
    }
    if all(bound is not None for bound in shard_bounds):
        # Sum of shard LP bounds; NOT a lower bound on the global optimum
        # (shared reflector builds are double-counted across shards), hence
        # metadata rather than DesignResult.lower_bound.
        metadata["shard_bound_sum"] = float(sum(shard_bounds))
    solution.metadata["algorithm"] = f"{SHARDED_PREFIX}{inner.name}"
    return DesignResult(
        strategy=request.strategy,
        solution=solution,
        lower_bound=None,
        stage_seconds={
            "partition": partition_seconds,
            "design_shards": design_seconds,
            "stitch": stitch_seconds,
            "audit": audit_seconds,
        },
        audit=audit,
        metadata=metadata,
        request_id=request.request_id,
    )


def make_sharded_designer(name: str) -> RegisteredDesigner:
    """Materialise the ``"sharded:<inner>"`` designer for a registry name.

    Raises ``KeyError`` when the inner strategy is unknown (or itself
    sharded) and ``ValueError`` when it is bound-only -- a shard plan of LP
    bounds has nothing to stitch.
    """
    inner_name = name[len(SHARDED_PREFIX):]
    if not inner_name or inner_name.startswith(SHARDED_PREFIX):
        raise KeyError(
            f"unknown designer {name!r} (the sharded prefix wraps exactly one "
            "registered solution-producing strategy, e.g. 'sharded:spaa03')"
        )
    try:
        inner = get_designer(inner_name)
    except KeyError:
        from repro.api.registry import designer_names

        known = ", ".join(designer_names())
        raise KeyError(
            f"unknown inner strategy {inner_name!r} for {name!r} (known: {known})"
        ) from None
    if not inner.produces_solution:
        raise ValueError(
            f"strategy {name!r} is invalid: inner strategy {inner_name!r} "
            "produces no integral design (bound only), so there is nothing "
            "to shard and stitch"
        )

    def _run(request: DesignRequest) -> DesignResult:
        return design_sharded(request, inner)

    return RegisteredDesigner(
        name=name,
        run=_run,
        description=(
            f"hierarchical sharded pipeline (partition -> {inner_name} per "
            "shard -> stitch)"
        ),
        baseline=False,
        in_comparisons=False,
        produces_solution=True,
    )


__all__ = [
    "SHARDED_PREFIX",
    "design_sharded",
    "make_sharded_designer",
    "shard_seed",
]
