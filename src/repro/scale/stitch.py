"""Cross-shard stitching: merge, reconcile shared reflectors, repair, audit.

Per-shard designs are independent, so the only global invariants that can
break when merging are the ones spanning shards:

* **reflector builds** -- two shards may both pay for the same reflector; the
  merged solution pays once (merging can only *reduce* total cost relative to
  the sum of shard costs).
* **fanout** -- shards see the full fanout budget of shared reflectors, so the
  merged load of a reflector can exceed what any single shard used.
  :func:`rebalance_fanout` walks overloaded reflectors deterministically and
  sheds load -- dropping redundant copies (the demand stays at or above its
  required weight) or moving assignments to under-loaded candidates -- until
  each reflector is back to ``max(F_r, its worst single-shard load)``.
* **weight** -- per-demand delivered weight is untouched by the merge (edge
  weights are copied verbatim into shards), so a demand's weight fraction
  after merging equals its shard value; the optional repair pass then tops up
  remaining shortfalls using *global* candidates, i.e. exactly the demands
  whose useful sources span shards.

The whole stage is deterministic: iteration orders are sorted, no randomness
is drawn, so stitching the same shard solutions always yields the same merged
design (the ``jobs``-independence guarantee of the sharded pipeline rests on
this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.algorithm import repair_weight_shortfalls
from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.scale.partition import PartitionPlan


@dataclass
class StitchReport:
    """What the stitch stage did, for result metadata and diagnostics."""

    num_shards: int = 0
    overloaded_reflectors: int = 0
    assignments_dropped: int = 0
    assignments_moved: int = 0
    demands_repaired: int = 0
    unresolved_overloads: int = 0
    shard_max_fanout_factor: float = 0.0
    shard_min_weight_fraction: float = 1.0
    per_shard_cost: dict[str, float] = field(default_factory=dict)

    def as_metadata(self) -> dict:
        """JSON-scalar view for ``DesignResult.metadata``."""
        return {
            "num_shards": self.num_shards,
            "stitch_overloaded_reflectors": self.overloaded_reflectors,
            "stitch_assignments_dropped": self.assignments_dropped,
            "stitch_assignments_moved": self.assignments_moved,
            "stitch_demands_repaired": self.demands_repaired,
            "stitch_unresolved_overloads": self.unresolved_overloads,
            "shard_max_fanout_factor": self.shard_max_fanout_factor,
            "shard_min_weight_fraction": self.shard_min_weight_fraction,
        }


def _load_counts(
    assignments: dict[tuple[str, str], list[str]] | Sequence[list[str]],
) -> dict[str, int]:
    """Per-reflector assignment counts (the load the fanout bounds measure)."""
    values = (
        assignments.values() if isinstance(assignments, dict) else assignments
    )
    load: dict[str, int] = {}
    for reflectors in values:
        for reflector in reflectors:
            load[reflector] = load.get(reflector, 0) + 1
    return load


def merge_shard_solutions(
    problem: OverlayDesignProblem, solutions: Sequence[OverlaySolution]
) -> OverlaySolution:
    """Union the shard designs into one solution over the full problem.

    Demand keys are disjoint across shards (the partition covers every sink
    exactly once), so assignments merge without conflicts; reflector builds
    and stream deliveries are deduplicated by reconstruction from the merged
    assignments.
    """
    assignments: dict[tuple[str, str], list[str]] = {}
    for solution in solutions:
        for key, reflectors in solution.assignments.items():
            if key in assignments:
                raise ValueError(
                    f"demand {key} appears in more than one shard solution"
                )
            assignments[key] = sorted(reflectors)
    return OverlaySolution.from_assignments(
        problem, assignments, metadata={"algorithm": "sharded-merge"}
    )


def _max_shard_load(solutions: Sequence[OverlaySolution]) -> dict[str, int]:
    """Per reflector, the largest load any single shard put on it."""
    worst: dict[str, int] = {}
    for solution in solutions:
        for reflector, value in _load_counts(solution.assignments).items():
            worst[reflector] = max(worst.get(reflector, 0), value)
    return worst


def rebalance_fanout(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    max_shard_load: dict[str, int],
    report: StitchReport,
) -> OverlaySolution:
    """Shed cross-shard fanout overload without breaking demand weight.

    A reflector is *overloaded* when its merged load exceeds
    ``allowed(r) = max(F_r, max single-shard load of r)`` -- i.e. when merging
    made it worse than both its bound and its worst shard.  For each such
    reflector (sorted by name), assignments are visited in sorted demand-key
    order and either

    * **dropped**, when the demand's remaining weight still meets its
      requirement (redundant cross-shard copy), or
    * **moved** to the cheapest-per-weight alternative candidate with spare
      in-bound capacity that keeps the demand at or above the *minimum* of
      its requirement and its current delivered weight (so short demands are
      never made shorter).

    Whatever load cannot be shed this way is left in place (weight always
    wins over fanout, matching the paper's asymmetric guarantees) and counted
    in ``report.unresolved_overloads``.
    """
    assignments = {
        key: list(reflectors) for key, reflectors in solution.assignments.items()
    }
    load = _load_counts(assignments)
    serving_keys: dict[str, list[tuple[str, str]]] = {}
    for key, reflectors in assignments.items():
        for reflector in reflectors:
            serving_keys.setdefault(reflector, []).append(key)

    demands_by_key = {demand.key: demand for demand in problem.demands}
    delivered: dict[tuple[str, str], float] = {}

    def delivered_weight(key: tuple[str, str]) -> float:
        if key not in delivered:
            demand = demands_by_key[key]
            delivered[key] = sum(
                problem.edge_weight(demand, r) for r in assignments.get(key, [])
            )
        return delivered[key]

    def allowed(reflector: str) -> int:
        return max(problem.fanout(reflector), max_shard_load.get(reflector, 0))

    overloaded = sorted(
        r for r, used in load.items() if used > allowed(r)
    )
    report.overloaded_reflectors = len(overloaded)
    for reflector in overloaded:
        serving = sorted(serving_keys[reflector])
        for key in serving:
            if load[reflector] <= allowed(reflector):
                break
            demand = demands_by_key[key]
            weight_here = problem.edge_weight(demand, reflector)
            required = problem.demand_weight(demand)
            current = delivered_weight(key)
            # Redundant copy: dropping it keeps the demand satisfied.
            if current - weight_here >= required - 1e-12:
                assignments[key].remove(reflector)
                load[reflector] -= 1
                delivered[key] = current - weight_here
                report.assignments_dropped += 1
                continue
            # Otherwise try to move the copy to a spare candidate.
            floor = min(required, current) - 1e-12
            alternatives = [
                candidate
                for candidate in problem.candidate_reflectors(demand)
                if candidate != reflector
                and candidate not in assignments[key]
                and load.get(candidate, 0) < allowed(candidate)
                and current
                - weight_here
                + problem.edge_weight(demand, candidate)
                >= floor
            ]
            if not alternatives:
                continue
            alternatives.sort(
                key=lambda r: (
                    problem.assignment_cost(demand, r)
                    / max(problem.edge_weight(demand, r), 1e-12),
                    r,
                )
            )
            target = alternatives[0]
            assignments[key].remove(reflector)
            assignments[key] = sorted([*assignments[key], target])
            load[reflector] -= 1
            load[target] = load.get(target, 0) + 1
            serving_keys.setdefault(target, []).append(key)
            delivered[key] = (
                current - weight_here + problem.edge_weight(demand, target)
            )
            report.assignments_moved += 1
        if load[reflector] > allowed(reflector):
            report.unresolved_overloads += 1

    return OverlaySolution.from_assignments(
        problem, assignments, metadata=dict(solution.metadata)
    )


def stitch_solutions(
    problem: OverlayDesignProblem,
    plan: PartitionPlan,
    solutions: Sequence[OverlaySolution],
    repair: bool = True,
    fanout_slack: float = 4.0,
) -> tuple[OverlaySolution, StitchReport]:
    """Merge per-shard designs and reconcile the cross-shard constraints.

    Stages: merge (dedup builds) -> fanout rebalance (shed overload on shared
    reflectors) -> optional global repair (top up demands whose useful
    candidates span shards, within ``fanout_slack`` x fanout) -> done.  The
    caller re-audits the returned solution against the *full* problem.
    """
    if len(solutions) != plan.num_shards:
        raise ValueError(
            f"got {len(solutions)} shard solutions for {plan.num_shards} shards"
        )
    report = StitchReport(num_shards=plan.num_shards)
    for shard, solution in zip(plan.shards, solutions):
        report.per_shard_cost[shard.shard_id] = solution.total_cost()
        for reflector, used in _load_counts(solution.assignments).items():
            report.shard_max_fanout_factor = max(
                report.shard_max_fanout_factor, used / problem.fanout(reflector)
            )
        for demand in shard.problem.demands:
            report.shard_min_weight_fraction = min(
                report.shard_min_weight_fraction,
                solution.weight_satisfaction(demand),
            )

    merged = merge_shard_solutions(problem, solutions)
    merged = rebalance_fanout(merged.problem, merged, _max_shard_load(solutions), report)
    if repair:
        before = {
            demand.key
            for demand in problem.demands
            if merged.weight_satisfaction(demand) < 1.0 - 1e-12
        }
        if before:
            merged = repair_weight_shortfalls(problem, merged, fanout_slack)
            report.demands_repaired = sum(
                1
                for demand in problem.demands
                if demand.key in before
                and merged.weight_satisfaction(demand) >= 1.0 - 1e-12
            )
    merged.metadata["algorithm"] = "sharded-stitch"
    return merged, report


def stitch_assignments(
    problem: OverlayDesignProblem,
    plan: PartitionPlan,
    shard_assignments: Sequence[dict[tuple[str, str], list[str]]],
    repair: bool = True,
    fanout_slack: float = 4.0,
) -> tuple[OverlaySolution, StitchReport]:
    """:func:`stitch_solutions` for plain per-shard assignment maps.

    Produces a bit-identical merged solution and report without requiring the
    caller to wrap each shard's assignments in an :class:`OverlaySolution`
    over a materialized shard subproblem -- the incremental engine uses this
    to splice carried and re-solved shards together on a *lazy* partition
    plan, where clean shards never pay for subproblem extraction.  Per-shard
    weight fractions are computed from the full problem's edge weights, which
    the extraction copies verbatim, so the statistics match the solution
    path.  ``report.per_shard_cost`` (diagnostics only, not part of
    ``as_metadata``) is left empty.
    """
    if len(shard_assignments) != plan.num_shards:
        raise ValueError(
            f"got {len(shard_assignments)} shard assignment maps "
            f"for {plan.num_shards} shards"
        )
    demands_by_key = {demand.key: demand for demand in problem.demands}
    report = StitchReport(num_shards=plan.num_shards)
    for shard, assignments in zip(plan.shards, shard_assignments):
        for reflector, used in _load_counts(assignments).items():
            report.shard_max_fanout_factor = max(
                report.shard_max_fanout_factor, used / problem.fanout(reflector)
            )
        for key in shard.demand_keys:
            demand = demands_by_key[key]
            required = problem.demand_weight(demand)
            if required <= 0:
                fraction = 1.0
            else:
                delivered = sum(
                    problem.edge_weight(demand, reflector)
                    for reflector in assignments.get(key, [])
                )
                fraction = delivered / required
            report.shard_min_weight_fraction = min(
                report.shard_min_weight_fraction, fraction
            )

    merged_assignments: dict[tuple[str, str], list[str]] = {}
    for assignments in shard_assignments:
        for key, reflectors in assignments.items():
            if key in merged_assignments:
                raise ValueError(
                    f"demand {key} appears in more than one shard solution"
                )
            merged_assignments[key] = sorted(reflectors)
    merged = OverlaySolution.from_assignments(
        problem, merged_assignments, metadata={"algorithm": "sharded-merge"}
    )

    max_shard_load: dict[str, int] = {}
    for assignments in shard_assignments:
        for reflector, value in _load_counts(assignments).items():
            max_shard_load[reflector] = max(
                max_shard_load.get(reflector, 0), value
            )

    merged = rebalance_fanout(problem, merged, max_shard_load, report)
    if repair:
        before = {
            demand.key
            for demand in problem.demands
            if merged.weight_satisfaction(demand) < 1.0 - 1e-12
        }
        if before:
            merged = repair_weight_shortfalls(problem, merged, fanout_slack)
            report.demands_repaired = sum(
                1
                for demand in problem.demands
                if demand.key in before
                and merged.weight_satisfaction(demand) >= 1.0 - 1e-12
            )
    merged.metadata["algorithm"] = "sharded-stitch"
    return merged, report


__all__ = [
    "StitchReport",
    "merge_shard_solutions",
    "rebalance_fanout",
    "stitch_assignments",
    "stitch_solutions",
]
