"""repro.scale -- the hierarchical sharded design pipeline.

The scaling layer the ROADMAP's internet-scale goal needs: partition a large
instance into ISP/metro shards, design each shard independently through any
registered strategy (in parallel, deterministically), then stitch and
re-audit the merged design.  See ``docs/scaling.md`` for the architecture and
the determinism contract.

* :mod:`repro.scale.partition` -- pluggable :class:`Partitioner` registry
  (``metro`` / ``isp`` / ``hash`` / ``auto``), balanced shard planning and
  self-contained subproblem extraction;
* :mod:`repro.scale.stitch` -- merge, cross-shard fanout reconciliation,
  global repair;
* :mod:`repro.scale.pipeline` -- :func:`design_sharded` and the dynamic
  ``"sharded:<strategy>"`` designers resolved through
  :func:`repro.api.get_designer`.

Quick start::

    from repro.api import DesignRequest, get_designer

    result = get_designer("sharded:spaa03").design(
        DesignRequest(problem=problem, options={"shards": "auto", "jobs": "auto"})
    )
"""

from repro.scale.partition import (
    AUTO_SHARD_CAP,
    PartitionPlan,
    Partitioner,
    Shard,
    build_partition,
    extract_shard_problem,
    get_partitioner,
    partitioner_names,
    register_partitioner,
    resolve_partitioner,
    resolve_shard_count,
)
from repro.scale.pipeline import (
    SHARDED_PREFIX,
    design_sharded,
    make_sharded_designer,
    shard_seed,
)
from repro.scale.stitch import (
    StitchReport,
    merge_shard_solutions,
    rebalance_fanout,
    stitch_assignments,
    stitch_solutions,
)

__all__ = [
    "AUTO_SHARD_CAP",
    "SHARDED_PREFIX",
    "PartitionPlan",
    "Partitioner",
    "Shard",
    "StitchReport",
    "build_partition",
    "design_sharded",
    "extract_shard_problem",
    "get_partitioner",
    "make_sharded_designer",
    "merge_shard_solutions",
    "partitioner_names",
    "rebalance_fanout",
    "register_partitioner",
    "resolve_partitioner",
    "resolve_shard_count",
    "shard_seed",
    "stitch_assignments",
    "stitch_solutions",
]
