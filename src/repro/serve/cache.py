"""Content-addressed artifact cache for the serving layer.

Every expensive artifact the design pipeline produces is a pure function of
JSON-expressible content: a partition plan of the problem document plus the
partitioner knobs, a compiled sparse LP of the problem plus the formulation
knobs, a Monte-Carlo :class:`~repro.simulation.montecarlo.PathTable` of the
``(problem, solution, failure schedule)`` triple, a whole
:class:`~repro.api.DesignResult` of the full request document.  That purity
is the serving layer's license to cache: keys are content digests computed by
:func:`repro.core.serialization.canonical_digest` (floats rounded, keys
sorted), so two requests describing the same computation -- whatever object
identities or field orders they arrived with -- address the same cache line,
and a hit is *bit-identical* to a recompute by construction.

:class:`ArtifactCache` is a thread-safe LRU over ``(namespace, key)`` lines
with a byte budget, hit/miss/eviction counters per namespace, and optional
on-disk spill: evicted picklable artifacts drop to ``spill_dir`` and are
transparently re-admitted on the next get.  One cache instance backs a whole
:class:`~repro.serve.DesignService` (shared across worker threads) or a
single :class:`~repro.serve.DesignSession`.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.api.types import DesignRequest, parameters_to_dict
from repro.core.serialization import canonical_digest, problem_digest

#: Default byte budget: enough for hundreds of mid-size artifacts while
#: staying far below the Monte-Carlo engine's working set.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Nominal size charged to artifacts that cannot be pickled for measurement
#: (e.g. lazy partition plans holding closures).
UNSIZED_NOMINAL_BYTES = 64 * 1024


@dataclass
class CacheStats:
    """Counters snapshot returned by :meth:`ArtifactCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spills: int = 0
    spill_hits: int = 0
    puts: int = 0
    entries: int = 0
    current_bytes: int = 0
    max_bytes: int = 0
    by_namespace: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "spills": self.spills,
            "spill_hits": self.spill_hits,
            "puts": self.puts,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
            "by_namespace": {
                name: dict(counts) for name, counts in self.by_namespace.items()
            },
        }


@dataclass
class _Entry:
    value: Any
    size: int
    spillable: bool


class ArtifactCache:
    """Thread-safe content-addressed LRU cache with a byte budget.

    Lines are addressed ``(namespace, key)`` -- the namespace names the
    artifact kind (``"result"``, ``"plan"``, ``"formulation"``, ``"lp"``,
    ``"path_table"``, ``"evaluation"``) and the key is a content digest from
    the helpers below.  Values are charged their pickled size against
    ``max_bytes``; inserting past the budget evicts least-recently-used
    lines.  With ``spill_dir`` set, evicted picklable values are written to
    disk and silently re-admitted (counted as ``spill_hits``) when next
    requested; unpicklable values (lazy plans holding closures) stay
    memory-only and are charged a nominal size.

    A single oversized artifact (larger than the whole budget) is stored
    anyway -- refusing it would make the serving layer slower than no cache
    at all -- and evicted as soon as anything else needs room.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        spill_dir: str | None = None,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.spill_dir = spill_dir
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self._current_bytes = 0
        self._counts: dict[str, dict[str, int]] = {}
        self._totals = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "spills": 0,
            "spill_hits": 0,
            "puts": 0,
        }

    # -- core operations ---------------------------------------------------

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Fetch a line, falling back to the spill directory; LRU-refreshes."""
        line = (namespace, key)
        with self._lock:
            entry = self._entries.get(line)
            if entry is not None:
                self._entries.move_to_end(line)
                self._count(namespace, "hits")
                return entry.value
            value = self._load_spilled(namespace, key)
            if value is not None:
                self._count(namespace, "hits")
                self._count(namespace, "spill_hits")
                self._admit(namespace, key, value)
                return value
            self._count(namespace, "misses")
            return default

    def put(self, namespace: str, key: str, value: Any) -> None:
        """Insert (or refresh) a line, evicting LRU lines past the budget."""
        if value is None:
            raise ValueError("cannot cache None (reserved for misses)")
        with self._lock:
            self._count(namespace, "puts")
            self._admit(namespace, key, value)

    def contains(self, namespace: str, key: str) -> bool:
        """Membership test that touches neither the LRU order nor counters."""
        with self._lock:
            if (namespace, key) in self._entries:
                return True
        path = self._spill_path(namespace, key)
        return path is not None and os.path.exists(path)

    def clear(self) -> None:
        """Drop every line (spilled files included); counters survive."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0
        if self.spill_dir and os.path.isdir(self.spill_dir):
            for name in os.listdir(self.spill_dir):
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(self.spill_dir, name))
                    except OSError:
                        pass

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                **self._totals,
                entries=len(self._entries),
                current_bytes=self._current_bytes,
                max_bytes=self.max_bytes,
                by_namespace={
                    name: dict(counts) for name, counts in self._counts.items()
                },
            )

    @property
    def hit_rate(self) -> float:
        return self.stats().hit_rate

    # -- internals ---------------------------------------------------------

    def _count(self, namespace: str, what: str) -> None:
        self._totals[what] += 1
        per = self._counts.setdefault(
            namespace,
            {
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "spills": 0,
                "spill_hits": 0,
                "puts": 0,
            },
        )
        per[what] += 1

    def _admit(self, namespace: str, key: str, value: Any) -> None:
        line = (namespace, key)
        old = self._entries.pop(line, None)
        if old is not None:
            self._current_bytes -= old.size
        size, spillable = _measure(value)
        self._entries[line] = _Entry(value=value, size=size, spillable=spillable)
        self._current_bytes += size
        while self._current_bytes > self.max_bytes and len(self._entries) > 1:
            self._evict_lru(keep=line)

    def _evict_lru(self, keep: tuple[str, str]) -> None:
        for line in self._entries:
            if line != keep:
                break
        else:  # pragma: no cover - guarded by len(...) > 1
            return
        entry = self._entries.pop(line)
        self._current_bytes -= entry.size
        self._count(line[0], "evictions")
        if entry.spillable:
            path = self._spill_path(*line)
            if path is not None:
                try:
                    with open(path, "wb") as handle:
                        pickle.dump(entry.value, handle)
                    self._count(line[0], "spills")
                except (OSError, pickle.PicklingError):
                    pass

    def _spill_path(self, namespace: str, key: str) -> str | None:
        if not self.spill_dir:
            return None
        os.makedirs(self.spill_dir, exist_ok=True)
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in key)
        return os.path.join(self.spill_dir, f"{namespace}__{safe}.pkl")

    def _load_spilled(self, namespace: str, key: str) -> Any:
        path = self._spill_path(namespace, key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None


def _measure(value: Any) -> tuple[int, bool]:
    """Pickled byte size of a value, or a nominal charge when unpicklable."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)), True
    except Exception:
        return UNSIZED_NOMINAL_BYTES, False


# -- content-addressed keys -----------------------------------------------
#
# Key builders live next to the cache so the whole cache-key contract is in
# one file (docs/serving.md restates it).  All of them bottom out in
# canonical_digest over explicit JSON documents: nothing about object
# identity, field order, or schema_version churn leaks into a key.


def parameters_digest(parameters: Any) -> str:
    """Digest of the full :class:`~repro.core.algorithm.DesignParameters`."""
    return canonical_digest(parameters_to_dict(parameters))


def formulation_key(p_digest: str, parameters: Any) -> str:
    """Key for compiled LP formulations (and their solved fractionals).

    Covers exactly the knobs :class:`~repro.api.pipeline.FormulateStage`
    and :class:`~repro.api.pipeline.SolveStage` read -- the build backend,
    the solver backend, and the Section-6 extension toggles -- so requests
    differing only in rounding seed or repair knobs share a line, while
    solves on different solver backends never alias.
    """
    document = parameters_to_dict(parameters)
    return canonical_digest(
        {
            "problem": p_digest,
            "lp_backend": document["lp_backend"],
            "solver_backend": document["solver_backend"],
            "extensions": document["extensions"],
        }
    )


def plan_key(p_digest: str, partitioner: Any, shards: Any) -> str:
    """Key for partition plans: problem content plus the two layout knobs."""
    return canonical_digest(
        {"problem": p_digest, "partitioner": str(partitioner), "shards": str(shards)}
    )


def path_table_key(
    p_digest: str,
    s_digest: str,
    scenario: str,
    seed: int,
    num_packets: int,
) -> str:
    """Key for compiled Monte-Carlo path tables.

    The failure schedule is drawn from ``(seed, scenario index)`` inside
    :func:`~repro.simulation.evaluate_design`, so ``(scenario, seed,
    num_packets)`` pins it exactly without hashing the schedule itself.
    """
    return canonical_digest(
        {
            "problem": p_digest,
            "solution": s_digest,
            "scenario": scenario,
            "seed": int(seed),
            "num_packets": int(num_packets),
        }
    )


def request_digest(request: DesignRequest) -> str | None:
    """Content digest of a design request, or ``None`` when not digestable.

    Built from an explicit document -- strategy, parameters, options,
    evaluation spec, and the *problem content digest* -- rather than the
    serialized request, so it is independent of ``schema_version`` churn and
    of the correlation ``request_id`` (which identifies a submission, not a
    computation).  Two kinds of request return ``None`` and run uncached:
    requests whose options are not JSON-expressible (callables and the
    like), and *seedless* requests (``parameters.rounding.seed is None``) --
    those draw fresh entropy per run, so serving a cached payload or joining
    an in-flight computation would silently pin one draw and change
    observable semantics.  Stage-level caches (formulation, LP) still apply
    to seedless requests; they sit below the randomness.
    """
    if request.seed is None:
        return None
    from repro.api.types import evaluation_spec_to_dict

    document = {
        "strategy": request.strategy,
        "parameters": parameters_to_dict(request.parameters),
        "options": dict(request.options),
        "evaluation": (
            evaluation_spec_to_dict(request.evaluation)
            if request.evaluation is not None
            else None
        ),
        "problem": problem_digest(request.problem),
    }
    try:
        return canonical_digest(document)
    except (TypeError, ValueError):
        return None


__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "formulation_key",
    "parameters_digest",
    "path_table_key",
    "plan_key",
    "problem_digest",
    "request_digest",
]
