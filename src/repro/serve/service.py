"""The async serving front: queue + worker pool + in-flight deduplication.

:class:`DesignService` is the process-local front the ``repro serve`` CLI
exposes over HTTP: submissions enqueue versioned
:class:`~repro.api.DesignRequest` documents, a pool of worker threads drains
the queue through :func:`repro.serve.execute.run_request_cached` (sharing one
:class:`~repro.serve.cache.ArtifactCache`), and callers hold a
:class:`DesignTicket` -- a future that resolves to the
:class:`~repro.api.DesignResult`.

In-flight deduplication rides the same content digests as the cache: two
submissions with equal :func:`~repro.serve.cache.request_digest` while the
first is still queued or running share one computation; the second ticket
resolves to the same payload re-stamped with its own ``request_id`` and a
``deduplicated`` marker.  Combined with the whole-result cache this gives
three cost tiers per digest: compute once, join in-flight, then serve from
cache.

Workers are *threads*, not processes: the LP solve and the Monte-Carlo sweep
release the GIL inside scipy/numpy kernels, per-request fan-out still uses
the deterministic process executor underneath (``options["jobs"]``), and
threads are what lets one cache instance and one dedup map be shared without
serialization.  Determinism per request is untouched -- each request's
result depends only on its own content and seed, never on queue order.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.types import (
    DesignRequest,
    DesignResult,
    request_from_dict,
    result_to_dict,
)
from repro.serve.cache import ArtifactCache, request_digest
from repro.serve.execute import run_request_cached

_SHUTDOWN = object()


class ServiceOverloadedError(RuntimeError):
    """Raised by :meth:`DesignService.submit` when the bounded queue is full.

    Backpressure, not failure: the request was never enqueued, so the caller
    should retry later (the HTTP front maps this to ``429 Too Many Requests``
    with a ``Retry-After`` hint).
    """


@dataclass
class DesignTicket:
    """A submitted request's handle: digest, dedup marker, and a future."""

    request_id: str | None
    digest: str | None
    deduplicated: bool
    future: Future

    def result(self, timeout: float | None = None) -> DesignResult:
        """Block for the design result (re-stamped for deduplicated tickets)."""
        result = self.future.result(timeout=timeout)
        if self.deduplicated:
            cache_block = dict(result.cache or {})
            cache_block["deduplicated"] = True
            result = replace(result, cache=cache_block, request_id=self.request_id)
        return result

    def done(self) -> bool:
        return self.future.done()


class DesignService:
    """Queue + worker pool over :func:`run_request_cached`.

    Use as a context manager (or call :meth:`start` / :meth:`stop`).  One
    service owns one :class:`ArtifactCache`; submit from any thread.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        workers: int = 2,
        bypass_cache: bool = False,
        max_queue: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.cache = cache if cache is not None else ArtifactCache()
        self.workers = workers
        self.bypass_cache = bypass_cache
        self.max_queue = max_queue
        # Bounded only for submissions: shutdown sentinels and the workers
        # use blocking puts/gets, so `stop()` still drains cleanly.
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue or 0)
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._latencies: list[float] = []
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "deduplicated": 0,
            "errors": 0,
            "rejected": 0,
        }
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "DesignService":
        if self._started:
            return self
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        self._started = False

    def __enter__(self) -> "DesignService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- submission --------------------------------------------------------

    def submit(self, request: DesignRequest | dict) -> DesignTicket:
        """Enqueue a request (object or versioned JSON document).

        Returns immediately; join the in-flight computation when an equal-
        digest request is already queued or running.  With ``max_queue`` set
        and the queue full, raises :class:`ServiceOverloadedError` instead of
        enqueueing (deduplicated joins never consume a queue slot, so repeat
        digests still get tickets under overload).
        """
        if not self._started:
            raise RuntimeError("DesignService is not started (use 'with service:')")
        if isinstance(request, dict):
            request = request_from_dict(request)
        digest = request_digest(request) if not self.bypass_cache else None
        with self._lock:
            self._counters["submitted"] += 1
            if digest is not None:
                existing = self._inflight.get(digest)
                if existing is not None:
                    self._counters["deduplicated"] += 1
                    return DesignTicket(
                        request_id=request.request_id,
                        digest=digest,
                        deduplicated=True,
                        future=existing,
                    )
            future: Future = Future()
            if digest is not None:
                self._inflight[digest] = future
        try:
            self._queue.put_nowait((request, digest, future, time.perf_counter()))
        except queue.Full:
            with self._lock:
                self._counters["rejected"] += 1
                # The future was never handed to a worker: retire its dedup
                # line so later submits do not join a computation that will
                # never run.
                if digest is not None and self._inflight.get(digest) is future:
                    del self._inflight[digest]
            raise ServiceOverloadedError(
                f"design queue is full ({self.max_queue} pending); retry later"
            ) from None
        return DesignTicket(
            request_id=request.request_id,
            digest=digest,
            deduplicated=False,
            future=future,
        )

    def run(self, request: DesignRequest | dict, timeout: float | None = None):
        """Submit and block: the synchronous convenience wrapper."""
        return self.submit(request).result(timeout=timeout)

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            request, digest, future, submitted = item
            try:
                result = run_request_cached(
                    request, self.cache, bypass=self.bypass_cache, digest=digest
                )
            except BaseException as error:  # noqa: BLE001 - forwarded to caller
                with self._lock:
                    self._counters["errors"] += 1
                    if digest is not None:
                        self._inflight.pop(digest, None)
                future.set_exception(error)
                continue
            latency = time.perf_counter() - submitted
            with self._lock:
                self._counters["completed"] += 1
                self._latencies.append(latency)
                if digest is not None:
                    # Remove *before* resolving: late equal-digest submits
                    # must go through the result cache (a fresh fast line)
                    # rather than join a future that is about to be retired.
                    self._inflight.pop(digest, None)
            future.set_result(result)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            latencies = sorted(self._latencies)
            counters = dict(self._counters)
            inflight = len(self._inflight)
        snapshot = {
            **counters,
            "in_flight": inflight,
            "queue_depth": self._queue.qsize(),
            "max_queue": self.max_queue,
            "workers": self.workers,
            "latency_p50_seconds": _percentile(latencies, 50.0),
            "latency_p99_seconds": _percentile(latencies, 99.0),
            "cache": self.cache.stats().as_dict(),
        }
        return snapshot


def _percentile(sorted_values: list[float], q: float) -> float | None:
    """Nearest-rank percentile of an ascending list (``None`` when empty)."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1, round(q / 100.0 * len(sorted_values)) - 1))
    return float(sorted_values[rank])


# -- HTTP front ------------------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    """Minimal JSON-over-HTTP front: POST /design, GET /stats, GET /healthz."""

    service: DesignService  # injected by DesignServer

    def log_message(self, *args: Any) -> None:  # pragma: no cover - silence
        pass

    def _respond(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._respond(200, {"status": "ok"})
        elif self.path == "/stats":
            self._respond(200, self.service.stats())
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/design":
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            document = json.loads(self.rfile.read(length) or b"{}")
            ticket = self.service.submit(document)
            result = ticket.result()
        except ServiceOverloadedError as error:
            self._respond(429, {"error": str(error)}, headers={"Retry-After": "1"})
            return
        except (ValueError, KeyError) as error:
            self._respond(400, {"error": str(error)})
            return
        self._respond(200, result_to_dict(result))


class DesignServer:
    """The ``repro serve`` HTTP server wrapping a :class:`DesignService`.

    Binds ``host:port`` (port 0 picks an ephemeral port, exposed as
    ``server.port``) and serves requests on a background thread.  Use as a
    context manager; stopping the server stops the service too.
    """

    def __init__(
        self,
        service: DesignService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else DesignService()
        handler = type("_BoundHandler", (_ServiceHandler,), {"service": self.service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "DesignServer":
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.stop()

    def __enter__(self) -> "DesignServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# -- self-test -------------------------------------------------------------


def run_self_test(verbose: bool = True) -> dict:
    """The ``repro serve --self-test`` round-trip (also a CI gate).

    Submits three mixed requests through a live service -- fresh, repeat
    digest, and a churn delta through a :class:`DesignSession` -- and checks
    the serving determinism contract end to end:

    * every served payload is bit-identical to a direct, cache-free
      :func:`repro.api.run_request` run (modulo timings and the ``cache``
      provenance block);
    * the session event matches a standalone ``design_incremental`` call;
    * the cache saw at least one hit.

    Returns a JSON-friendly report; raises ``AssertionError`` on violation.
    """
    from repro.api.registry import run_request
    from repro.core.algorithm import DesignParameters
    from repro.core.serialization import solution_digest
    from repro.incremental.churn import SinkChurnConfig, churn_stream
    from repro.incremental.engine import design_incremental
    from repro.serve.session import DesignSession
    from repro.workloads.random_instances import RandomInstanceConfig, random_problem

    problem = random_problem(
        RandomInstanceConfig(num_reflectors=12, num_sinks=24, num_streams=2),
        rng=1307,
    )
    parameters = DesignParameters(seed=17)

    def payload(result: DesignResult) -> dict:
        document = result_to_dict(result)
        document.pop("stage_seconds", None)
        document.pop("cache", None)
        return document

    checks: list[str] = []
    with DesignServer() as server:
        service = server.service
        requests = [
            DesignRequest(
                problem=problem, parameters=parameters, strategy="spaa03",
                request_id="fresh",
            ),
            DesignRequest(
                problem=problem, parameters=parameters, strategy="spaa03",
                request_id="repeat",
            ),
            DesignRequest(
                problem=problem, parameters=parameters, strategy="greedy",
                request_id="mixed",
            ),
        ]
        tickets = [service.submit(request) for request in requests]
        results = [ticket.result(timeout=120) for ticket in tickets]
        # A fourth submit after the first completed: must be a whole-result
        # cache hit (the in-flight line is retired, the cached line is not).
        replay = service.run(
            DesignRequest(
                problem=problem, parameters=parameters, strategy="spaa03",
                request_id="replay",
            ),
            timeout=120,
        )
        assert replay.cache is not None and replay.cache["served_from_cache"], (
            "expected the replayed request to be served from the result cache"
        )
        requests.append(
            DesignRequest(
                problem=problem, parameters=parameters, strategy="spaa03",
                request_id="replay",
            )
        )
        results.append(replay)
        for request, result in zip(requests, results):
            direct = run_request(
                DesignRequest(
                    problem=problem,
                    parameters=parameters,
                    strategy=request.strategy,
                    request_id=request.request_id,
                )
            )
            assert payload(result) == payload(direct), (
                f"served result for {request.request_id!r} diverges from "
                "direct run_request"
            )
            checks.append(f"{request.request_id}: bit-identical to direct run")

        # Churn leg: one session event vs a standalone incremental call.
        session = DesignSession(
            problem,
            strategy="sharded:spaa03",
            parameters=parameters,
            cache=service.cache,
            session_id="self-test",
        )
        standing = session.ensure_design()
        event, delta, new_problem = next(
            churn_stream(
                problem,
                ["sink-churn"],
                seed=7,
                churn_config=SinkChurnConfig(fraction=0.2),
            )
        )
        served = session.apply_delta(delta)
        direct = design_incremental(
            standing, new_problem, session.parameters, strategy="spaa03",
            previous_problem=problem, delta=delta,
        )
        assert solution_digest(served.solution) == solution_digest(
            direct.solution
        ), "session churn event diverges from standalone design_incremental"
        checks.append(f"session {event} event: bit-identical to design_incremental")

        stats = service.stats()
        cache_stats = stats["cache"]
        assert cache_stats["hits"] > 0 and cache_stats["hit_rate"] > 0, (
            f"expected a positive cache hit rate (stats: {cache_stats})"
        )
        assert stats["deduplicated"] >= 1, (
            "expected the repeat-digest request to join the in-flight line "
            f"(stats: {stats})"
        )
        checks.append(
            f"cache hits={cache_stats['hits']} dedup={stats['deduplicated']} "
            f"hit_rate={cache_stats['hit_rate']:.2f}"
        )

    report = {
        "ok": True,
        "checks": checks,
        "stats": {
            key: value
            for key, value in stats.items()
            if key not in ("cache",)
        },
        "cache": cache_stats,
    }
    if verbose:
        for line in checks:
            print(f"self-test: {line}")
        print("self-test: OK")
    return report


__all__ = [
    "DesignServer",
    "DesignService",
    "DesignTicket",
    "ServiceOverloadedError",
    "run_self_test",
]
