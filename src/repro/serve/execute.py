"""Cache-aware request execution: :func:`run_request_cached`.

This is the single code path every serving entry point -- the async
:class:`~repro.serve.DesignService`, a :class:`~repro.serve.DesignSession`'s
initial design, the ``repro serve`` self-test -- funnels requests through.
It wraps :func:`repro.api.run_request` with the content-addressed
:class:`~repro.serve.cache.ArtifactCache` at every level:

* whole-result: a repeat-digest request is answered from the cached
  serialized :class:`~repro.api.DesignResult` document, bit-identical to the
  original compute (the cache stores the document, not the live object);
* partition plans: ``sharded:*`` strategies reuse the plan line keyed on
  problem digest + partitioner knobs;
* formulations and LP solves: a :class:`StageCacheAdapter` is installed via
  :func:`repro.api.pipeline.use_stage_cache` for the duration of the design,
  so the pipeline (and any inline per-shard inner designs) skips LP assembly
  and the simplex run for content-identical subproblems;
* Monte-Carlo tables and whole evaluation sweeps, via the
  ``table_provider`` hook of :func:`repro.simulation.evaluate_design`.

Determinism contract: every cached artifact is a pure function of its key's
content, so for a fixed request the result payload is bit-identical with the
cache hot, cold, or absent -- caching moves wall-clock, never bits.  The
per-request provenance lands on ``DesignResult.cache``.
"""

from __future__ import annotations

import weakref
from dataclasses import replace
from typing import Any, Callable, Mapping

from repro.api.pipeline import StageCache, use_stage_cache
from repro.api.registry import get_designer
from repro.api.types import (
    DesignRequest,
    DesignResult,
    evaluation_spec_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.core.problem import OverlayDesignProblem
from repro.core.serialization import (
    canonical_digest,
    problem_digest,
    solution_digest,
)
from repro.serve.cache import (
    ArtifactCache,
    formulation_key,
    path_table_key,
    plan_key,
    request_digest,
)


class StageCacheAdapter(StageCache):
    """Bind the pipeline's stage-cache protocol to an :class:`ArtifactCache`.

    One adapter is created per served request (or per session event); it
    additionally tallies per-stage hit/miss counts so the serving layer can
    stamp ``DesignResult.cache["stages"]`` -- a single design may run the
    formulate/solve stages many times (once per shard), so the stamp
    collapses the tallies to ``"hit"`` / ``"miss"`` / ``"partial"``.
    """

    def __init__(self, cache: ArtifactCache) -> None:
        self.cache = cache
        self.counts = {
            "formulate": {"hit": 0, "miss": 0},
            "solve": {"hit": 0, "miss": 0},
        }
        # Problem digests are memoised per problem *object* for the adapter's
        # lifetime: one design digests each (sub)problem up to four times
        # (formulate get/put, solve get/put) and the content cannot change
        # underneath -- problems are append-only and the pipeline never
        # appends.
        self._digests: "weakref.WeakKeyDictionary[OverlayDesignProblem, str]" = (
            weakref.WeakKeyDictionary()
        )

    def _digest(self, problem: OverlayDesignProblem) -> str:
        try:
            return self._digests[problem]
        except (KeyError, TypeError):
            digest = problem_digest(problem)
            try:
                self._digests[problem] = digest
            except TypeError:  # pragma: no cover - non-weakrefable problem
                pass
            return digest

    def get_formulation(self, problem, parameters):
        key = formulation_key(self._digest(problem), parameters)
        value = self.cache.get("formulation", key)
        self.counts["formulate"]["hit" if value is not None else "miss"] += 1
        return value

    def put_formulation(self, problem, parameters, formulation):
        key = formulation_key(self._digest(problem), parameters)
        self.cache.put("formulation", key, formulation)

    def get_lp(self, problem, parameters):
        key = formulation_key(self._digest(problem), parameters)
        value = self.cache.get("lp", key)
        self.counts["solve"]["hit" if value is not None else "miss"] += 1
        return value

    def put_lp(self, problem, parameters, lp_solution, fractional):
        key = formulation_key(self._digest(problem), parameters)
        self.cache.put("lp", key, (lp_solution, fractional))

    def stage_states(self) -> dict[str, str]:
        states: dict[str, str] = {}
        for stage, counts in self.counts.items():
            if counts["hit"] == 0 and counts["miss"] == 0:
                continue
            if counts["miss"] == 0:
                states[stage] = "hit"
            elif counts["hit"] == 0:
                states[stage] = "miss"
            else:
                states[stage] = "partial"
        return states


def make_table_provider(
    cache: ArtifactCache, p_digest: str, s_digest: str, seed: int
) -> Callable:
    """The :func:`~repro.simulation.evaluate_design` hook over the cache."""
    from repro.simulation.montecarlo import compile_path_table

    def provider(
        scenario: str,
        problem: OverlayDesignProblem,
        solution,
        failures,
        num_packets: int,
        node_isp: Mapping[str, str | None],
    ):
        key = path_table_key(p_digest, s_digest, scenario, seed, num_packets)
        table = cache.get("path_table", key)
        if table is None:
            table = compile_path_table(
                problem, solution, failures, num_packets, dict(node_isp)
            )
            cache.put("path_table", key, table)
        return table

    return provider


def _evaluate_cached(
    request: DesignRequest,
    result: DesignResult,
    cache: ArtifactCache,
    p_digest: str,
    stages: dict[str, str],
) -> None:
    """Replicate the registry's evaluation sweep through the cache.

    Same call, same seeds as :meth:`RegisteredDesigner.design` -- the sweep
    is a pure function of ``(problem, solution, spec)``, so both the whole
    sweep and the per-scenario compiled path tables are cacheable.
    """
    from repro.simulation import evaluate_design, evaluate_design_streaming

    spec = request.evaluation
    s_digest = solution_digest(result.solution)
    key = canonical_digest(
        {
            "problem": p_digest,
            "solution": s_digest,
            "spec": evaluation_spec_to_dict(spec),
        }
    )
    evaluation = cache.get("evaluation", key)
    stages["evaluate"] = "hit" if evaluation is not None else "miss"
    if evaluation is None:
        if spec.mode == "streaming":
            evaluation = evaluate_design_streaming(
                request.problem,
                result.solution,
                spec.scenarios,
                trials=spec.trials,
                num_packets=spec.num_packets,
                window=spec.window,
                seed=spec.seed,
                traces=spec.traces,
                max_memory=spec.max_memory,
            )
        else:
            evaluation = evaluate_design(
                request.problem,
                result.solution,
                spec.scenarios,
                trials=spec.trials,
                num_packets=spec.num_packets,
                window=spec.window,
                seed=spec.seed,
                table_provider=make_table_provider(cache, p_digest, s_digest, spec.seed),
            )
        cache.put("evaluation", key, evaluation)
    result.evaluation = {
        name: dict(metrics) for name, metrics in evaluation.items()
    }


def run_request_cached(
    request: DesignRequest,
    cache: ArtifactCache | None,
    *,
    bypass: bool = False,
    session_id: str | None = None,
    digest: str | None = None,
) -> DesignResult:
    """Run a design request through the content-addressed cache.

    With ``cache=None`` or ``bypass=True`` this is :func:`repro.api.
    run_request` plus a provenance stamp -- the bypass escape hatch
    documented in ``docs/serving.md``.  Otherwise: whole-result lookup by
    request digest first; on a miss, the design runs with the plan cache
    (for ``sharded:*`` strategies) and the formulate/solve stage cache
    installed, the evaluation sweep (when requested) runs through the
    path-table cache, and the serialized result document is stored for the
    next repeat-digest request.

    The returned result carries ``result.cache`` with the digests, the
    per-stage ``"hit"``/``"miss"``/``"partial"`` map, and
    ``served_from_cache``.  Requests that cannot be digested (non-JSON
    options) run uncached with ``stages={"result": "bypass"}``.

    ``digest`` is an optional precomputed :func:`request_digest` -- the
    service passes the one it already computed for in-flight dedup so the
    hot repeat path canonicalizes the problem once, not twice.
    """
    if cache is None or bypass:
        from repro.api.registry import run_request

        result = run_request(request)
        result.cache = {
            "request_digest": None,
            "problem_digest": None,
            "stages": {},
            "served_from_cache": False,
            "bypass": True,
        }
        if session_id is not None:
            result.cache["session_id"] = session_id
        return result

    # The repeat-digest hot path canonicalizes the problem exactly once (for
    # the request digest -- or zero times when the service hands one in);
    # the problem digest is only needed for stage keys on a miss, so it is
    # stored with the cached entry instead of being recomputed on a hit.
    r_digest = digest if digest is not None else request_digest(request)
    stages: dict[str, str] = {}

    if r_digest is not None:
        entry = cache.get("result", r_digest)
        if entry is not None:
            result = result_from_dict(entry["document"], request.problem)
            result.request_id = request.request_id
            result.cache = {
                "request_digest": r_digest,
                "problem_digest": entry["problem_digest"],
                "stages": {"result": "hit"},
                "served_from_cache": True,
            }
            if session_id is not None:
                result.cache["session_id"] = session_id
            return result
        stages["result"] = "miss"
    else:
        stages["result"] = "bypass"

    p_digest = problem_digest(request.problem)
    designer = get_designer(request.strategy)
    design_request = request
    if request.evaluation is not None:
        design_request = replace(request, evaluation=None)
    if design_request.strategy != designer.name:
        design_request = replace(design_request, strategy=designer.name)

    adapter = StageCacheAdapter(cache)
    with use_stage_cache(adapter):
        result = _design_with_plan_cache(
            design_request, designer, cache, p_digest, stages
        )
    result.strategy = designer.name
    result.request_id = request.request_id
    stages.update(adapter.stage_states())

    if request.evaluation is not None and designer.produces_solution:
        _evaluate_cached(request, result, cache, p_digest, stages)

    result.cache = {
        "request_digest": r_digest,
        "problem_digest": p_digest,
        "stages": stages,
        "served_from_cache": False,
    }
    if session_id is not None:
        result.cache["session_id"] = session_id

    if r_digest is not None:
        document = result_to_dict(result)
        # The stored payload is the pure computation: provenance is stamped
        # per retrieval, never cached (a hit must say it was a hit).
        document = dict(document)
        document["cache"] = None
        cache.put(
            "result", r_digest, {"document": document, "problem_digest": p_digest}
        )
    return result


def _design_with_plan_cache(
    request: DesignRequest,
    designer: Any,
    cache: ArtifactCache,
    p_digest: str,
    stages: dict[str, str],
) -> DesignResult:
    """Run the design, reusing the partition plan for sharded strategies."""
    from repro.scale.pipeline import SHARDED_PREFIX, design_sharded

    if not designer.name.startswith(SHARDED_PREFIX):
        return designer.design(request)

    inner = get_designer(designer.name[len(SHARDED_PREFIX):])
    options: Mapping[str, Any] = request.options or {}
    partitioner = options.get("partitioner", "auto")
    shards = options.get("shards", "auto")
    key = plan_key(p_digest, partitioner, shards)
    plan = cache.get("plan", key)
    stages["plan"] = "hit" if plan is not None else "miss"
    if plan is None:
        from repro.scale.partition import build_partition

        plan = build_partition(request.problem, partitioner=partitioner, shards=shards)
        cache.put("plan", key, plan)
    return design_sharded(request, inner, plan=plan)


__all__ = [
    "StageCacheAdapter",
    "make_table_provider",
    "run_request_cached",
]
