"""Long-lived design sessions: a standing problem + design under churn.

The paper frames overlay design as something an operator re-runs continuously
("our algorithm is reasonably fast so it can be rerun as often as needed",
Section 1.3).  PR 6's :func:`repro.api.design_incremental` made one churn
event cheap; :class:`DesignSession` makes a *stream* of them cheap: it holds
the standing problem, design, and partition plan across events, feeding each
:class:`~repro.incremental.ProblemDelta` through the incremental engine with

* the standing partition plan rebound to the post-churn problem
  (:func:`repro.scale.partition.rebind_partition`) whenever the sink set is
  unchanged -- skipping the per-event grouping pass entirely;
* the session's :class:`~repro.serve.cache.ArtifactCache` installed as the
  pipeline stage cache, so residual shard re-solves warm-start from cached
  formulations/LP solutions when churn revisits content-identical
  subproblems.

Both reuses are pure-function shortcuts: a session event produces the same
design, bit for bit, as a standalone ``design_incremental`` call over the
same standing design and delta (the differential suite in
``tests/test_serve.py`` pins this).  Only wall-clock changes -- which is the
point: the s1 benchmark drives a 5-event churn stream through one session
against five independent ``repro update``-equivalent calls.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.api.types import DesignRequest, DesignResult
from repro.core.algorithm import DesignParameters
from repro.core.problem import OverlayDesignProblem
from repro.core.serialization import problem_digest
from repro.incremental.delta import ProblemDelta, apply_delta, diff_problems
from repro.incremental.engine import design_incremental
from repro.scale.partition import build_partition, rebind_partition
from repro.scale.pipeline import SHARDED_PREFIX
from repro.serve.cache import ArtifactCache
from repro.serve.execute import StageCacheAdapter, run_request_cached

_SESSION_COUNTER = itertools.count(1)

#: Options understood by the initial (sharded) design, a subset of the
#: incremental engine's option surface.
_SHARDED_OPTION_KEYS = ("shards", "jobs", "partitioner", "stitch_repair",
                        "inner_options")


@dataclass
class SessionEvent:
    """Provenance of one applied delta, kept in ``DesignSession.events``."""

    index: int
    delta_summary: dict
    seconds: float
    plan_reused: bool
    problem_digest: str
    strategy: str


@dataclass
class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


class DesignSession:
    """A standing problem + design streaming deltas through the incremental engine.

    Parameters
    ----------
    problem:
        The initial problem state.
    strategy:
        Strategy for the initial full design (default ``"sharded:spaa03"``);
        its inner strategy (prefix stripped) seeds the per-shard re-solves.
    parameters:
        Design parameters shared by the initial design and every event.
    options:
        Incremental-engine options (``shards``/``jobs``/``partitioner``/
        ``stitch_repair``/``inner_options``/``resolve``/
        ``full_redesign_threshold``); the sharded subset also configures the
        initial design.
    cache:
        The session's :class:`ArtifactCache` (a private default is created
        when omitted; pass a service's cache to share lines across
        sessions).  ``cache=False`` disables caching entirely.
    session_id:
        Stable identifier stamped into every result's ``cache`` provenance.
    """

    def __init__(
        self,
        problem: OverlayDesignProblem,
        *,
        strategy: str = "sharded:spaa03",
        parameters: DesignParameters | None = None,
        options: Mapping | None = None,
        cache: ArtifactCache | None | bool = None,
        session_id: str | None = None,
    ) -> None:
        self.problem = problem
        self.strategy = strategy
        self.parameters = parameters if parameters is not None else DesignParameters()
        self.options = dict(options or {})
        if cache is False:
            self.cache: ArtifactCache | None = None
        elif cache is None or cache is True:
            self.cache = ArtifactCache()
        else:
            self.cache = cache
        self.session_id = session_id or f"session-{next(_SESSION_COUNTER):04d}"
        self.events: list[SessionEvent] = []
        self._result: DesignResult | None = None
        self._plan = None

    # -- standing state ----------------------------------------------------

    @property
    def inner_strategy(self) -> str:
        name = self.strategy
        while name.startswith(SHARDED_PREFIX):
            name = name[len(SHARDED_PREFIX):]
        return name

    @property
    def result(self) -> DesignResult | None:
        """The standing design result (``None`` before the initial design)."""
        return self._result

    def ensure_design(self) -> DesignResult:
        """Design the standing problem if no design exists yet."""
        if self._result is None:
            request = DesignRequest(
                problem=self.problem,
                parameters=self.parameters,
                strategy=self.strategy,
                options={
                    key: self.options[key]
                    for key in _SHARDED_OPTION_KEYS
                    if key in self.options
                }
                if self.strategy.startswith(SHARDED_PREFIX)
                else {},
                request_id=f"{self.session_id}-initial",
            )
            self._result = run_request_cached(
                request, self.cache, session_id=self.session_id
            )
            if self.cache is not None and self.strategy.startswith(SHARDED_PREFIX):
                # The initial sharded design just cached its partition plan;
                # adopt it as the standing plan so the first demand-level
                # churn event can rebind instead of regrouping.
                from repro.serve.cache import plan_key

                self._plan = self.cache.get(
                    "plan",
                    plan_key(
                        problem_digest(self.problem),
                        self.options.get("partitioner", "auto"),
                        self.options.get("shards", "auto"),
                    ),
                )
        return self._result

    # -- event stream ------------------------------------------------------

    def apply_delta(self, delta: ProblemDelta) -> DesignResult:
        """Apply one delta against the standing problem and re-design."""
        new_problem = (
            self.problem if delta.is_empty else apply_delta(self.problem, delta)
        )
        return self._apply(delta, new_problem)

    def apply_problem(self, new_problem: OverlayDesignProblem) -> DesignResult:
        """Diff the standing problem against ``new_problem`` and re-design."""
        delta = diff_problems(self.problem, new_problem)
        return self._apply(delta, new_problem)

    def stream(self, deltas: Iterable[ProblemDelta]) -> Iterator[DesignResult]:
        """Apply a sequence of deltas, yielding the result after each."""
        for delta in deltas:
            yield self.apply_delta(delta)

    def _apply(
        self, delta: ProblemDelta, new_problem: OverlayDesignProblem
    ) -> DesignResult:
        standing = self.ensure_design()
        start = time.perf_counter()
        plan = None
        plan_reused = False
        sinks_changed = bool(delta.sinks_added) or bool(delta.sinks_removed)
        if not delta.requires_full_redesign:
            if self._plan is not None and not sinks_changed:
                try:
                    plan = rebind_partition(self._plan, new_problem)
                    plan_reused = True
                except ValueError:
                    plan = None
            if plan is None:
                plan = build_partition(
                    new_problem,
                    partitioner=self.options.get("partitioner", "auto"),
                    shards=self.options.get("shards", "auto"),
                    materialize=False,
                )
        adapter = StageCacheAdapter(self.cache) if self.cache is not None else None
        if adapter is not None:
            from repro.api.pipeline import use_stage_cache

            context = use_stage_cache(adapter)
        else:
            context = _NullContext()
        with context:
            result = design_incremental(
                standing,
                new_problem,
                self.parameters,
                strategy=self.inner_strategy,
                options=self.options,
                previous_problem=self.problem,
                delta=delta,
                plan=plan,
            )
        seconds = time.perf_counter() - start

        digest = problem_digest(new_problem)
        stages: dict[str, str] = {
            "plan": "session-reuse" if plan_reused else "miss"
        }
        if adapter is not None:
            stages.update(adapter.stage_states())
        result.cache = {
            "request_digest": None,
            "problem_digest": digest,
            "stages": stages,
            "served_from_cache": False,
            "session_id": self.session_id,
            "session_event": len(self.events) + 1,
        }

        self.events.append(
            SessionEvent(
                index=len(self.events) + 1,
                delta_summary=dict(delta.summary()),
                seconds=seconds,
                plan_reused=plan_reused,
                problem_digest=digest,
                strategy=result.strategy,
            )
        )
        self.problem = new_problem
        self._result = result
        self._plan = plan
        return result

    def summary(self) -> dict:
        """JSON-friendly session snapshot (the ``repro serve`` stats shape)."""
        return {
            "session_id": self.session_id,
            "strategy": self.strategy,
            "events": len(self.events),
            "plan_reuses": sum(1 for event in self.events if event.plan_reused),
            "event_seconds": [event.seconds for event in self.events],
            "cache": self.cache.stats().as_dict() if self.cache is not None else None,
        }


__all__ = ["DesignSession", "SessionEvent"]
