"""The design-service layer: content-addressed caching, sessions, serving.

Three tiers over the Designer registry (:mod:`repro.api`):

* :class:`ArtifactCache` (:mod:`repro.serve.cache`) -- a thread-safe LRU of
  partition plans, compiled LPs, Monte-Carlo path tables, evaluation sweeps,
  and whole serialized results, content-addressed by the canonical digests
  of :mod:`repro.core.serialization`;
* :class:`DesignSession` (:mod:`repro.serve.session`) -- a long-lived
  standing problem + design streaming :class:`~repro.incremental.
  ProblemDelta` events through the incremental engine with plan and
  warm-start reuse;
* :class:`DesignService` / :class:`DesignServer` (:mod:`repro.serve.
  service`) -- the async queue + worker-pool front with in-flight request
  deduplication, exposed over HTTP by the ``repro serve`` CLI verb.

The invariant everything here maintains: caching moves wall-clock, never
bits.  See ``docs/serving.md`` for the cache-key and determinism contracts.
"""

from repro.serve.cache import (
    ArtifactCache,
    CacheStats,
    formulation_key,
    parameters_digest,
    path_table_key,
    plan_key,
    request_digest,
)
from repro.serve.execute import StageCacheAdapter, run_request_cached
from repro.serve.service import (
    DesignServer,
    DesignService,
    DesignTicket,
    ServiceOverloadedError,
    run_self_test,
)
from repro.serve.session import DesignSession, SessionEvent

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DesignServer",
    "DesignService",
    "DesignSession",
    "DesignTicket",
    "ServiceOverloadedError",
    "SessionEvent",
    "StageCacheAdapter",
    "formulation_key",
    "parameters_digest",
    "path_table_key",
    "plan_key",
    "request_digest",
    "run_request_cached",
    "run_self_test",
]
