"""ISP-failure resilience: the value of the Section-6.4 color constraints.

The paper motivates its "color" extension with catastrophic ISP-wide events
(the 2002 WorldCom outage, the 2001 Cable & Wireless / PSINet de-peering):
if every copy of a stream reaches a sink through reflectors homed in the same
ISP, one ISP failure silences that sink.  The color constraints force the
copies onto *different* ISPs.

This example designs the same deployment twice -- with and without the color
constraints -- and then knocks out each ISP in turn, measuring (analytically
and by packet simulation) how many edge regions keep an acceptable stream.

Run with::

    python examples/isp_failure_resilience.py
"""

from __future__ import annotations

from repro import DesignParameters, DesignRequest, run_request
from repro.analysis import format_table
from repro.core.extensions import color_constrained_parameters
from repro.network.reliability import demand_success_probability
from repro.simulation import FailureSchedule, SimulationConfig, simulate_solution
from repro.workloads import AkamaiLikeConfig, generate_akamai_like_topology


def survivors_after_outage(problem, solution, victim_isp: str) -> int:
    """Demands that still meet their threshold when ``victim_isp`` is down."""
    survivors = 0
    for demand in problem.demands:
        success = demand_success_probability(
            problem,
            demand,
            solution.reflectors_serving(demand),
            failed_isps={victim_isp},
        )
        if success + 1e-12 >= demand.success_threshold:
            survivors += 1
    return survivors


def main() -> None:
    config = AkamaiLikeConfig(
        num_regions=3, colos_per_region=3, num_isps=3, num_streams=2, reflectors_per_colo=2
    )
    topology, registry = generate_akamai_like_topology(config, rng=4)
    problem = topology.to_problem()
    print(f"Deployment: {topology.size_summary()}; ISPs: {registry.names()}")

    base_params = DesignParameters(seed=3, repair_shortfall=True)
    plain = run_request(DesignRequest(problem, base_params)).solution
    diverse = run_request(
        DesignRequest(
            problem,
            color_constrained_parameters(base_params),
            strategy="spaa03-extended",
        )
    ).solution

    print("\n=== Analytic survivors per single-ISP outage ===")
    rows = []
    for victim in registry.names():
        rows.append(
            {
                "failed ISP": victim,
                "plain design survivors": survivors_after_outage(problem, plain, victim),
                "color-constrained survivors": survivors_after_outage(
                    problem, diverse, victim
                ),
                "total demands": problem.num_demands,
            }
        )
    print(format_table(rows))

    print("\n=== Packet simulation of the worst outage (per design) ===")
    node_isp = {r: problem.color(r) for r in problem.reflectors}
    sim_rows = []
    for name, solution in (("plain", plain), ("color-constrained", diverse)):
        worst = None
        for victim in registry.names():
            schedule = FailureSchedule.single_isp_outage(victim, 10_000, fraction=1.0)
            sim = simulate_solution(
                problem,
                solution,
                SimulationConfig(num_packets=10_000, failures=schedule, seed=5),
                node_isp=node_isp,
            )
            row = {
                "design": name,
                "failed ISP": victim,
                "mean loss": sim.mean_loss,
                "demands within budget": int(
                    sim.fraction_meeting_threshold * len(sim.demands)
                ),
            }
            if worst is None or row["mean loss"] > worst["mean loss"]:
                worst = row
        sim_rows.append(worst)
    print(format_table(sim_rows, float_format=".4f"))

    print(
        "\nCost of ISP diversity: "
        f"plain = {plain.total_cost():.2f}, color-constrained = {diverse.total_cost():.2f}."
        "\nThe color-constrained design keeps (weakly) more edge regions on the air under"
        "\nany single-ISP outage -- the stability the paper's Section 6.4 aims for."
    )


if __name__ == "__main__":
    main()
