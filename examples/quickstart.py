"""Quickstart: design a small overlay multicast network and inspect the result.

This example builds, by hand, the kind of instance the paper's Figure 1
sketches -- one live stream, a handful of candidate reflectors, a few
edgeserver regions with quality requirements -- runs the SPAA'03 approximation
algorithm, and prints the resulting design, its cost relative to the LP lower
bound, and the reliability delivered to every edgeserver.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DesignParameters, DesignRequest, OverlayDesignProblem, run_request
from repro.analysis import check_paper_guarantees, format_table


def build_problem() -> OverlayDesignProblem:
    """One concert stream, four candidate reflectors, five edge regions."""
    problem = OverlayDesignProblem(name="quickstart")
    problem.add_stream("concert")

    reflectors = {
        # name: (operating cost, fanout, ISP, loss from the entrypoint, feed cost)
        "nyc-r1": (12.0, 6, "isp-alpha", 0.005, 1.0),
        "lon-r1": (10.0, 6, "isp-beta", 0.010, 1.2),
        "fra-r1": (9.0, 4, "isp-alpha", 0.015, 1.1),
        "sjc-r1": (11.0, 4, "isp-gamma", 0.020, 0.9),
    }
    for name, (cost, fanout, isp, loss, feed_cost) in reflectors.items():
        problem.add_reflector(name, cost=cost, fanout=fanout, color=isp)
        problem.add_stream_edge("concert", name, loss_probability=loss, cost=feed_cost)

    # Edge regions with their measured loss from each reflector and the
    # bandwidth price of delivering one stream there.
    edges = {
        "boston": {"nyc-r1": (0.01, 0.4), "lon-r1": (0.05, 0.8), "sjc-r1": (0.04, 0.7)},
        "paris": {"lon-r1": (0.02, 0.4), "fra-r1": (0.02, 0.5), "nyc-r1": (0.06, 0.9)},
        "berlin": {"fra-r1": (0.01, 0.3), "lon-r1": (0.03, 0.5), "nyc-r1": (0.07, 0.9)},
        "seattle": {"sjc-r1": (0.02, 0.4), "nyc-r1": (0.05, 0.8)},
        "tokyo": {"sjc-r1": (0.04, 0.9), "lon-r1": (0.09, 1.3), "fra-r1": (0.08, 1.2)},
    }
    for sink, reachable in edges.items():
        problem.add_sink(sink)
        for reflector, (loss, cost) in reachable.items():
            problem.add_delivery_edge(reflector, sink, loss_probability=loss, cost=cost)
        problem.add_demand(sink, "concert", success_threshold=0.995)
    return problem


def main() -> None:
    problem = build_problem()
    print(f"Instance: {problem}")

    result = run_request(
        DesignRequest(problem, DesignParameters(seed=7, repair_shortfall=True))
    )
    report = result.report
    solution = result.solution

    print("\n=== Design ===")
    print(f"Reflectors built: {sorted(solution.built_reflectors)}")
    rows = []
    for demand in problem.demands:
        rows.append(
            {
                "edge region": demand.sink,
                "served by": ", ".join(solution.reflectors_serving(demand)),
                "required success": demand.success_threshold,
                "achieved success": solution.success_probability(demand),
            }
        )
    print(format_table(rows, float_format=".5f"))

    print("\n=== Cost ===")
    print(f"Total cost           : {solution.total_cost():.2f}")
    print(f"LP lower bound (OPT>=): {report.lp_lower_bound:.2f}")
    print(f"Cost ratio           : {report.cost_ratio:.3f}")
    print(f"(paper bound: c*log n = {report.rounded.multiplier:.1f})")

    print("\n=== Paper guarantees on this run ===")
    for check in check_paper_guarantees(problem, report):
        status = "OK " if check.holds else "FAIL"
        print(f"[{status}] {check.name}: measured {check.measured:.3f} vs bound {check.bound:.3f}")


if __name__ == "__main__":
    main()
