"""Flash-crowd event: provision a MacWorld-style live broadcast.

The paper's introduction motivates the overlay with the January 2002 MacWorld
keynote (50,000 viewers, 16.5 Gbps peak).  This example:

1. generates an Akamai-like deployment plus a high-bitrate "flash-crowd-event"
   stream subscribed by almost every edge region at a strict quality target;
2. designs the overlay with the SPAA'03 LP-rounding algorithm (plus the
   practical repair pass) and with the greedy / naive / single-tree baselines;
3. compares cost and analytic reliability across the designs;
4. replays the event through the packet-level simulator and reports the
   measured post-reconstruction loss at every edge region.

Run with::

    python examples/flash_crowd_event.py
"""

from __future__ import annotations

from repro import DesignParameters, DesignRequest, run_request
from repro.analysis import compare_designs, format_table
from repro.core.rounding import RoundingParameters
from repro.simulation import SimulationConfig, simulate_solution
from repro.workloads import AkamaiLikeConfig, FlashCrowdConfig, generate_flash_crowd_scenario


def main() -> None:
    config = FlashCrowdConfig(
        deployment=AkamaiLikeConfig(
            num_regions=3, colos_per_region=4, num_isps=3, num_streams=2
        ),
        event_bandwidth=4.0,
        event_threshold=0.999,
        subscription_fraction=0.95,
    )
    topology, _registry = generate_flash_crowd_scenario(config, rng=2026)
    problem = topology.to_problem()
    print(f"Deployment: {topology.size_summary()}")
    print(f"Design instance: {problem}")

    # --- Design with the paper's algorithm (plus practical repair) -----------
    result = run_request(
        DesignRequest(
            problem,
            DesignParameters(
                seed=7, repair_shortfall=True, rounding=RoundingParameters(c=16.0)
            ),
        )
    )
    report = result.report
    designs = {"spaa03 (+repair)": result.solution}
    for label, strategy in (
        ("greedy", "greedy"),
        ("naive quality-first", "naive-quality-first"),
        ("single tree", "single-tree"),
    ):
        designs[label] = run_request(
            DesignRequest(problem, strategy=strategy)
        ).solution

    print("\n=== Cost vs reliability across designs ===")
    rows = compare_designs(problem, designs, lower_bound=report.lp_lower_bound)
    print(
        format_table(
            rows,
            columns=[
                "design",
                "total_cost",
                "cost_ratio",
                "mean_success",
                "fraction_meeting_threshold",
                "mean_paths_per_demand",
                "max_fanout_factor",
            ],
        )
    )
    print(f"\nLP lower bound on any fully feasible design: {report.lp_lower_bound:.2f}")

    # --- Replay the event through the packet simulator ----------------------
    print("\n=== Packet-level replay of the event stream (20k packets) ===")
    event_rows = []
    for name, solution in designs.items():
        sim = simulate_solution(
            problem, solution, SimulationConfig(num_packets=20_000, seed=11)
        )
        event_results = [
            result
            for result in sim.demands
            if result.demand_key[1] == "flash-crowd-event"
        ]
        event_rows.append(
            {
                "design": name,
                "event viewers": len(event_results),
                "mean loss": sum(r.loss_rate for r in event_results) / len(event_results),
                "worst loss": max(r.loss_rate for r in event_results),
                "viewers within budget": sum(r.meets_threshold for r in event_results),
            }
        )
    print(format_table(event_rows, float_format=".4f"))

    print(
        "\nThe LP-rounding design serves the flash crowd at a cost close to the LP"
        "\nlower bound while keeping nearly every viewer within the 0.1% loss budget;"
        "\nthe single-tree design is cheaper but misses the quality target at most"
        "\nedge regions, which is exactly the trade-off the paper's overlay removes."
    )


if __name__ == "__main__":
    main()
