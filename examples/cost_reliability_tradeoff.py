"""Cost / reliability trade-off sweep.

The rounding multiplier ``c`` is the knob the paper exposes for trading cost
against constraint satisfaction ("the constants can be traded off in a manner
typical for multicriterion approximations").  This example sweeps ``c`` (and
the demands' quality thresholds) on a fixed Akamai-like deployment and prints
the resulting series: cost ratio versus the fraction of demands whose weight
requirement is fully met before any repair.

Run with::

    python examples/cost_reliability_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import DesignParameters, DesignRequest, run_request
from repro.analysis import format_table
from repro.core.rounding import RoundingParameters
from repro.workloads import AkamaiLikeConfig, generate_akamai_like_topology


def main() -> None:
    topology, _registry = generate_akamai_like_topology(
        AkamaiLikeConfig(num_regions=2, colos_per_region=4, num_isps=3, num_streams=3),
        rng=1,
    )
    problem = topology.to_problem()
    print(f"Instance: {problem}")

    print("\n=== Sweep of the rounding multiplier c (no repair) ===")
    rows = []
    for c in (2.0, 4.0, 8.0, 16.0, 32.0, 64.0):
        costs, met_fractions, fanouts = [], [], []
        for seed in range(3):
            result = run_request(
                DesignRequest(
                    problem,
                    DesignParameters(
                        rounding=RoundingParameters(c=c, seed=seed),
                        repair_shortfall=False,
                        retry_rounding=False,
                    ),
                )
            )
            report = result.report
            solution = result.solution
            costs.append(report.cost_ratio)
            met = np.mean(
                [solution.weight_satisfaction(d) >= 1.0 - 1e-9 for d in problem.demands]
            )
            met_fractions.append(met)
            fanouts.append(solution.max_fanout_factor())
        rows.append(
            {
                "c": c,
                "mean cost ratio": float(np.mean(costs)),
                "fraction fully met": float(np.mean(met_fractions)),
                "max fanout factor": float(np.max(fanouts)),
            }
        )
    print(format_table(rows, float_format=".3f"))
    print(
        "\nLarger multipliers buy reliability (more demands fully covered) at higher"
        "\ncost -- the multicriterion trade-off of Section 4.  The paper's analysis"
        "\nconstant (c = 64) is very conservative; small constants already satisfy"
        "\nmost demands on realistic instances."
    )

    print("\n=== Sweep of the quality threshold (c = 16, with repair) ===")
    rows = []
    for threshold in (0.95, 0.99, 0.995, 0.999):
        # Rebuild the problem with a uniform threshold for every demand.
        uniform = topology.to_problem(name=f"uniform-{threshold}")
        rebuilt = type(uniform)(name=uniform.name)
        for stream in uniform.streams:
            rebuilt.add_stream(stream, bandwidth=uniform.stream_bandwidth(stream))
        for reflector in uniform.reflectors:
            info = uniform.reflector_info(reflector)
            rebuilt.add_reflector(reflector, cost=info.cost, fanout=info.fanout, color=info.color)
        for sink in uniform.sinks:
            rebuilt.add_sink(sink)
        for edge in uniform.stream_edges():
            rebuilt.add_stream_edge(edge.stream, edge.reflector, edge.loss_probability, edge.cost)
        for reflector, sink in uniform.delivery_links():
            rebuilt.add_delivery_edge(
                reflector,
                sink,
                loss_probability=uniform.delivery_loss(reflector, sink),
                cost=uniform.delivery_cost(reflector, sink, uniform.streams[0]),
            )
        for demand in uniform.demands:
            rebuilt.add_demand(demand.sink, demand.stream, success_threshold=threshold)

        issues = rebuilt.feasibility_report()
        if issues:
            rows.append(
                {
                    "threshold": threshold,
                    "cost": float("nan"),
                    "mean paths per demand": float("nan"),
                    "note": f"{len(issues)} demands infeasible at this threshold",
                }
            )
            continue
        solution = run_request(
            DesignRequest(
                rebuilt,
                DesignParameters(
                    seed=0, repair_shortfall=True, rounding=RoundingParameters(c=16.0)
                ),
            )
        ).solution
        rows.append(
            {
                "threshold": threshold,
                "cost": solution.total_cost(),
                "mean paths per demand": float(
                    np.mean([len(solution.reflectors_serving(d)) for d in rebuilt.demands])
                ),
                "note": "",
            }
        )
    print(format_table(rows, float_format=".3f"))
    print(
        "\nTighter quality targets need more redundant paths per edge region and"
        "\ntherefore cost more -- the quality knob of Section 1.2 made quantitative."
    )


if __name__ == "__main__":
    main()
