"""Tests for the hierarchical sharded design pipeline (repro.scale)."""

from __future__ import annotations

import pytest

from repro.api import DesignRequest, get_designer, result_from_dict, result_to_dict
from repro.core.algorithm import DesignParameters
from repro.core.solution import OverlaySolution
from repro.scale import (
    StitchReport,
    build_partition,
    get_partitioner,
    merge_shard_solutions,
    rebalance_fanout,
    resolve_partitioner,
    resolve_shard_count,
    shard_seed,
    stitch_solutions,
)
from repro.workloads import (
    InternetScaleConfig,
    RandomInstanceConfig,
    generate_internet_scale_problem,
    random_problem,
)
from repro.workloads.tiny import build_tiny_problem


@pytest.fixture(scope="module")
def scale_problem():
    problem, _registry = generate_internet_scale_problem(
        InternetScaleConfig(num_sinks=200, sinks_per_metro=25), rng=7
    )
    return problem


# ---------------------------------------------------------------------------
# Workload generator
# ---------------------------------------------------------------------------


class TestInternetScaleWorkload:
    def test_structure_and_feasibility(self, scale_problem):
        assert scale_problem.num_sinks == 200
        assert scale_problem.num_demands == 200  # one demand per sink
        assert scale_problem.num_reflectors == 8 * 2
        assert scale_problem.feasibility_report() == []

    def test_deterministic_given_seed(self):
        config = InternetScaleConfig(num_sinks=60, sinks_per_metro=20)
        a, _ = generate_internet_scale_problem(config, rng=3)
        b, _ = generate_internet_scale_problem(config, rng=3)
        assert a.sinks == b.sinks
        assert [d.key for d in a.demands] == [d.key for d in b.demands]
        assert [d.success_threshold for d in a.demands] == [
            d.success_threshold for d in b.demands
        ]
        assert a.delivery_link_data() == b.delivery_link_data()

    def test_names_carry_metro_prefix_and_isp_colors(self, scale_problem):
        assert all("-" in name for name in scale_problem.sinks)
        colors = {scale_problem.color(r) for r in scale_problem.reflectors}
        assert colors and None not in colors

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="candidates_per_sink"):
            InternetScaleConfig(candidates_per_sink=1)
        with pytest.raises(ValueError, match="quality_mix"):
            InternetScaleConfig(quality_mix=(0.5, 0.5, 0.5))


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


class TestPartition:
    def test_metro_partitioner_covers_all_sinks_exactly_once(self, scale_problem):
        plan = build_partition(scale_problem, partitioner="metro", shards="auto")
        assert plan.partitioner == "metro"
        placed = [sink for shard in plan.shards for sink in shard.sinks]
        assert sorted(placed) == sorted(scale_problem.sinks)

    def test_demand_keys_partition_the_demands(self, scale_problem):
        plan = build_partition(scale_problem, shards=4)
        keys = [key for shard in plan.shards for key in shard.demand_keys]
        assert sorted(keys) == sorted(d.key for d in scale_problem.demands)

    def test_explicit_shard_count_is_honoured(self, scale_problem):
        plan = build_partition(scale_problem, shards=3)
        assert plan.num_shards == 3
        sizes = [len(shard.sinks) for shard in plan.shards]
        # Metro groups are dealt largest-first, so the split stays balanced.
        assert max(sizes) - min(sizes) <= 25

    def test_subproblem_preserves_demand_candidates_and_weights(self, scale_problem):
        plan = build_partition(scale_problem, shards=4)
        shard = plan.shards[0]
        for demand in shard.problem.demands:
            original = next(
                d for d in scale_problem.demands if d.key == demand.key
            )
            assert demand.success_threshold == original.success_threshold
            assert shard.problem.candidate_reflectors(demand) == (
                scale_problem.candidate_reflectors(original)
            )
            for reflector in shard.problem.candidate_reflectors(demand):
                assert shard.problem.edge_weight(demand, reflector) == (
                    scale_problem.edge_weight(original, reflector)
                )
                assert shard.problem.assignment_cost(demand, reflector) == (
                    scale_problem.assignment_cost(original, reflector)
                )

    def test_subproblem_reflector_attributes_copied(self, scale_problem):
        plan = build_partition(scale_problem, shards=2)
        shard = plan.shards[0]
        for reflector in shard.problem.reflectors:
            ours = shard.problem.reflector_info(reflector)
            theirs = scale_problem.reflector_info(reflector)
            assert (ours.cost, ours.fanout, ours.color, ours.capacity) == (
                theirs.cost,
                theirs.fanout,
                theirs.color,
                theirs.capacity,
            )

    def test_isp_partitioner_groups_by_color(self, scale_problem):
        groups = get_partitioner("isp").group_sinks(scale_problem)
        assert len(groups) > 1
        assert sorted(s for sinks in groups.values() for s in sinks) == sorted(
            scale_problem.sinks
        )

    def test_hash_partitioner_balances_unstructured_names(self):
        problem = random_problem(
            RandomInstanceConfig(num_streams=2, num_reflectors=6, num_sinks=12), rng=0
        )
        chosen = resolve_partitioner(problem, "hash")
        assert chosen.name == "hash"
        plan = build_partition(problem, partitioner="hash", shards=3)
        sizes = sorted(len(shard.sinks) for shard in plan.shards)
        assert sum(sizes) == problem.num_sinks
        assert sizes[-1] - sizes[0] <= 1

    def test_auto_partitioner_prefers_metro_clusters(self, scale_problem):
        assert resolve_partitioner(scale_problem, "auto").name == "metro"

    def test_unknown_partitioner_raises(self, scale_problem):
        with pytest.raises(KeyError, match="unknown partitioner 'bogus'"):
            build_partition(scale_problem, partitioner="bogus")

    def test_resolve_shard_count(self, scale_problem):
        assert resolve_shard_count(1, scale_problem) == 1
        assert resolve_shard_count("4", scale_problem) == 4
        auto = resolve_shard_count("auto", scale_problem)
        assert 1 <= auto <= 64
        # Never more shards than sinks.
        assert resolve_shard_count(10_000, scale_problem) == scale_problem.num_sinks
        with pytest.raises(ValueError, match="shards must be >= 1"):
            resolve_shard_count(0, scale_problem)


# ---------------------------------------------------------------------------
# Stitching
# ---------------------------------------------------------------------------


class TestStitch:
    def test_merge_rejects_duplicate_demand_keys(self, scale_problem):
        demand = scale_problem.demands[0]
        reflector = scale_problem.candidate_reflectors(demand)[0]
        part = OverlaySolution.from_assignments(
            scale_problem, {demand.key: [reflector]}
        )
        with pytest.raises(ValueError, match="more than one shard"):
            merge_shard_solutions(scale_problem, [part, part])

    def test_merge_deduplicates_reflector_builds(self, scale_problem):
        d1, d2 = scale_problem.demands[0], scale_problem.demands[1]
        shared = set(scale_problem.candidate_reflectors(d1)) & set(
            scale_problem.candidate_reflectors(d2)
        )
        reflector = sorted(shared)[0]
        a = OverlaySolution.from_assignments(scale_problem, {d1.key: [reflector]})
        b = OverlaySolution.from_assignments(scale_problem, {d2.key: [reflector]})
        merged = merge_shard_solutions(scale_problem, [a, b])
        assert merged.built_reflectors == {reflector}
        assert merged.total_cost() < a.total_cost() + b.total_cost()

    def test_rebalance_sheds_redundant_overload(self):
        # Two demands, each assigned to both reflectors; r0 has fanout 1, so
        # the merged load of 2 must be shed by dropping redundant copies.
        problem = build_tiny_problem()
        demands = problem.demands[:2]
        candidates = [set(problem.candidate_reflectors(d)) for d in demands]
        shared = sorted(candidates[0] & candidates[1])
        assert len(shared) >= 2
        r_small, r_other = shared[0], shared[1]
        solution = OverlaySolution.from_assignments(
            problem,
            {d.key: [r_small, r_other] for d in demands},
        )
        report = StitchReport()
        # Pretend no shard used r_small more than once.
        rebalanced = rebalance_fanout(
            problem, solution, {r_small: 1, r_other: 2}, report
        )
        load = rebalanced.fanout_used(r_small)
        assert load <= max(problem.fanout(r_small), 1)

    def test_stitch_repairs_cross_shard_shortfall(self, scale_problem):
        plan = build_partition(scale_problem, shards=4)
        # Underserve every demand: one candidate each (likely below premium
        # requirements), then let the stitch repair pass top them up globally.
        solutions = []
        for shard in plan.shards:
            assignments = {}
            for demand in shard.problem.demands:
                assignments[demand.key] = [
                    shard.problem.candidate_reflectors(demand)[0]
                ]
            solutions.append(
                OverlaySolution.from_assignments(shard.problem, assignments)
            )
        stitched, report = stitch_solutions(scale_problem, plan, solutions)
        assert report.num_shards == 4
        assert report.demands_repaired > 0
        audit_fractions = [
            stitched.weight_satisfaction(d) for d in scale_problem.demands
        ]
        assert min(audit_fractions) >= min(
            min(
                sol.weight_satisfaction(d)
                for shard, sol in zip(plan.shards, solutions)
                for d in shard.problem.demands
            ),
            1.0,
        )

    def test_stitch_wrong_solution_count_raises(self, scale_problem):
        plan = build_partition(scale_problem, shards=3)
        with pytest.raises(ValueError, match="shard solutions"):
            stitch_solutions(scale_problem, plan, [])

    def test_stitch_counts_unresolved_overloads(self):
        # Two shards each pin their only demand on the same fanout-1
        # reflector; neither copy is droppable (the demand would go
        # unserved) and there is no alternative candidate, so the merged
        # load of 2 cannot be shed.  Weight wins over fanout: the overload
        # stays in place and is counted, bounded by the merged load.
        from repro.core.problem import OverlayDesignProblem
        from repro.scale.partition import PartitionPlan, Shard, extract_shard_problem

        problem = OverlayDesignProblem(name="pinned-overload")
        problem.add_stream("s")
        problem.add_reflector("r", cost=10.0, fanout=1)
        problem.add_stream_edge("s", "r", loss_probability=0.01, cost=1.0)
        for sink in ("a", "b"):
            problem.add_sink(sink)
            problem.add_delivery_edge("r", sink, loss_probability=0.05, cost=0.5)
            problem.add_demand(sink, "s", success_threshold=0.9)

        plan = PartitionPlan(partitioner="hash", requested_shards=2)
        for index, sink in enumerate(("a", "b")):
            plan.shards.append(
                Shard(
                    shard_id=f"shard{index}",
                    sinks=[sink],
                    demand_keys=[(sink, "s")],
                    problem=extract_shard_problem(
                        problem, [sink], name=f"pinned/{sink}"
                    ),
                )
            )
        solutions = [
            OverlaySolution.from_assignments(shard.problem, {(sink, "s"): ["r"]})
            for shard, sink in zip(plan.shards, ("a", "b"))
        ]

        stitched, report = stitch_solutions(problem, plan, solutions, repair=False)
        assert report.overloaded_reflectors == 1
        assert report.unresolved_overloads == 1
        assert report.assignments_dropped == 0
        assert report.assignments_moved == 0
        assert report.as_metadata()["stitch_unresolved_overloads"] == 1
        # Both demands stay served; the fanout violation is exactly the
        # merged load over the bound and never exceeds it.
        assert stitched.fanout_used("r") == 2
        assert stitched.max_fanout_factor() == pytest.approx(2.0)
        for demand in problem.demands:
            assert stitched.weight_satisfaction(demand) >= 1.0 - 1e-9


# ---------------------------------------------------------------------------
# The sharded designer
# ---------------------------------------------------------------------------


class TestShardedDesigner:
    def test_registry_resolves_and_caches(self):
        designer = get_designer("sharded:greedy")
        assert designer.name == "sharded:greedy"
        assert designer.produces_solution
        assert not designer.in_comparisons
        assert get_designer("sharded:greedy") is designer

    def test_unknown_inner_strategy(self):
        with pytest.raises(KeyError, match="unknown inner strategy 'bogus'"):
            get_designer("sharded:bogus")

    def test_bound_only_inner_strategy_rejected(self):
        with pytest.raises(ValueError, match="bound only"):
            get_designer("sharded:lp-bound")

    def test_nested_sharding_rejected(self):
        with pytest.raises(KeyError, match="exactly one"):
            get_designer("sharded:sharded:spaa03")
        with pytest.raises(KeyError):
            get_designer("sharded:")

    def test_unknown_option_rejected(self, tiny_problem):
        with pytest.raises(ValueError, match="for strategy 'sharded:greedy'"):
            get_designer("sharded:greedy").design(
                DesignRequest(
                    problem=tiny_problem,
                    strategy="sharded:greedy",
                    options={"typo": 1},
                )
            )

    def test_shard_seed_derivation(self):
        assert shard_seed(None, 3) is None
        seeds = {shard_seed(7, index) for index in range(10)}
        assert len(seeds) == 10  # independent streams per shard
        assert shard_seed(7, 3) == shard_seed(7, 3)  # stable across calls

    def test_sharded_design_serves_everything(self, scale_problem):
        result = get_designer("sharded:spaa03").design(
            DesignRequest(
                problem=scale_problem,
                strategy="sharded:spaa03",
                parameters=DesignParameters(seed=11, repair_shortfall=True),
                options={"shards": 4},
            )
        )
        assert result.strategy == "sharded:spaa03"
        assert result.audit is not None
        assert result.audit.unserved_demands == 0
        assert result.audit.min_weight_fraction >= 1.0 - 1e-9
        assert result.metadata["num_shards"] == 4
        assert set(result.stage_seconds) == {
            "partition",
            "design_shards",
            "stitch",
            "audit",
        }
        # Bound-free: the sum of shard LP bounds is metadata, not a bound.
        assert result.lower_bound is None
        assert result.metadata["shard_bound_sum"] > 0

    def test_jobs_do_not_change_the_design(self, scale_problem):
        def run(jobs):
            return get_designer("sharded:greedy").design(
                DesignRequest(
                    problem=scale_problem,
                    strategy="sharded:greedy",
                    parameters=DesignParameters(seed=5),
                    options={"shards": 4, "jobs": jobs},
                )
            )

        serial, parallel = run(1), run(2)
        assert serial.solution.assignments == parallel.solution.assignments
        assert serial.solution.built_reflectors == parallel.solution.built_reflectors
        assert serial.total_cost == parallel.total_cost

    def test_result_round_trips_through_json(self, scale_problem):
        result = get_designer("sharded:greedy").design(
            DesignRequest(
                problem=scale_problem,
                strategy="sharded:greedy",
                options={"shards": 3},
                request_id="scale-1",
            )
        )
        restored = result_from_dict(result_to_dict(result), scale_problem)
        assert restored.strategy == "sharded:greedy"
        assert restored.request_id == "scale-1"
        assert restored.solution.assignments == result.solution.assignments
        assert restored.metadata["num_shards"] == 3

    def test_sharded_requests_resolve_in_batch_workers(self, tiny_problem):
        # Worker processes resolve 'sharded:' names dynamically (they are not
        # part of the imported catalogue), so a parallel batch must work.
        from repro.api import design_batch

        requests = [
            DesignRequest(
                problem=tiny_problem,
                strategy="sharded:greedy",
                parameters=DesignParameters(seed=seed),
                options={"shards": 2},
                request_id=f"req-{seed}",
            )
            for seed in (0, 1)
        ]
        results = design_batch(requests, jobs=2)
        assert [r.strategy for r in results] == ["sharded:greedy"] * 2
        assert [r.request_id for r in results] == ["req-0", "req-1"]
        assert all(r.audit.unserved_demands == 0 for r in results)

    def test_single_shard_degenerates_gracefully(self, tiny_problem):
        result = get_designer("sharded:greedy").design(
            DesignRequest(
                problem=tiny_problem,
                strategy="sharded:greedy",
                options={"shards": 1},
            )
        )
        assert result.metadata["num_shards"] == 1
        assert result.audit.unserved_demands == 0
