"""Tests for the Hoeffding--Chernoff utilities (repro.core.concentration)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import concentration as conc


class TestBoundFormulas:
    def test_lower_tail_formula(self):
        assert conc.chernoff_lower_tail(10.0, 0.5) == pytest.approx(math.exp(-0.25 * 10 / 2))

    def test_upper_tail_formula(self):
        assert conc.chernoff_upper_tail(10.0, 0.5) == pytest.approx(math.exp(-0.25 * 10 / 3))

    def test_bounds_in_unit_interval(self):
        for mu in (0.5, 5.0, 50.0):
            for delta in (0.1, 0.5, 0.9):
                assert 0.0 < conc.chernoff_lower_tail(mu, delta) <= 1.0
                assert 0.0 < conc.chernoff_upper_tail(mu, delta) <= 1.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            conc.chernoff_lower_tail(-1.0, 0.5)
        with pytest.raises(ValueError):
            conc.chernoff_lower_tail(1.0, 0.0)
        with pytest.raises(ValueError):
            conc.chernoff_upper_tail(1.0, 1.0)

    @given(st.floats(0.1, 100.0), st.floats(0.01, 0.99))
    def test_bounds_decrease_with_mu(self, mu, delta):
        assert conc.chernoff_lower_tail(2 * mu, delta) <= conc.chernoff_lower_tail(mu, delta)
        assert conc.chernoff_upper_tail(2 * mu, delta) <= conc.chernoff_upper_tail(mu, delta)


class TestHoeffdingForm:
    def test_valid_range_enforced(self):
        with pytest.raises(ValueError):
            conc.hoeffding_upper_tail(10, 5.0, 6.0)  # t >= n - mu
        with pytest.raises(ValueError):
            conc.hoeffding_upper_tail(0, 0.0, 1.0)

    def test_small_case_value(self):
        value = conc.hoeffding_upper_tail(n=10, mu=5.0, t=2.0)
        assert 0.0 < value < 1.0

    @settings(max_examples=100)
    @given(st.integers(5, 200), st.floats(0.05, 0.9), st.floats(0.05, 0.9))
    def test_hoeffding_dominated_by_simplified_upper_bound(self, n, mean_fraction, delta):
        """Appendix A derives exp(-mu*eps^2/3) from the Hoeffding form; check order."""
        mu = mean_fraction * n
        t = delta * mu
        if not (0 < t < n - mu):
            return
        exact = conc.hoeffding_upper_tail(n, mu, t)
        simplified = conc.chernoff_upper_tail(mu, delta)
        # The simplified bound is weaker (larger), as the Appendix A derivation shows.
        assert exact <= simplified + 1e-9


class TestMultiplierChoice:
    def test_paper_constants(self):
        # delta = 1/4 -> c = 64 (the paper's example).
        assert conc.multiplier_for_failure_probability(0.25) == pytest.approx(64.0)

    def test_smaller_delta_needs_larger_c(self):
        assert conc.multiplier_for_failure_probability(0.1) > conc.multiplier_for_failure_probability(
            0.5
        )

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            conc.multiplier_for_failure_probability(0.0)
        with pytest.raises(ValueError):
            conc.multiplier_for_failure_probability(1.0)
        with pytest.raises(ValueError):
            conc.multiplier_for_failure_probability(0.5, exponent=0.0)

    def test_weight_violation_probability(self):
        # delta^2 c = 4 gives n^{-2}.
        assert conc.weight_violation_probability(0.25, 64.0, 100) == pytest.approx(100 ** -2.0)
        assert conc.weight_violation_probability(0.25, 64.0, 1) == 1.0
        with pytest.raises(ValueError):
            conc.weight_violation_probability(0.25, 64.0, 0)


class TestEmpiricalTails:
    def test_empirical_matches_definition(self):
        samples = np.array([0.5, 1.0, 2.0, 3.0])
        mu = 2.0
        assert conc.empirical_tail_frequency(samples, mu, 0.5, "lower") == pytest.approx(2 / 4)
        assert conc.empirical_tail_frequency(samples, mu, 0.5, "upper") == pytest.approx(1 / 4)

    def test_empirical_rejects_bad_input(self):
        with pytest.raises(ValueError):
            conc.empirical_tail_frequency(np.empty(0), 1.0, 0.5)
        with pytest.raises(ValueError):
            conc.empirical_tail_frequency(np.ones(3), 1.0, 0.5, side="sideways")

    def test_bound_holds_empirically_for_bernoulli_sums(self, rng):
        """Monte-Carlo check that the Chernoff bound is an actual upper bound."""
        num_vars, probability, trials = 60, 0.4, 4000
        sums = rng.binomial(num_vars, probability, size=trials).astype(float)
        mu = num_vars * probability
        for delta in (0.2, 0.4):
            frequency = conc.empirical_tail_frequency(sums, mu, delta, "lower")
            assert frequency <= conc.chernoff_lower_tail(mu, delta) + 0.02
            frequency_upper = conc.empirical_tail_frequency(sums, mu, delta, "upper")
            assert frequency_upper <= conc.chernoff_upper_tail(mu, delta) + 0.02
