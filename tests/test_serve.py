"""Tests for the serving layer: cache, cached execution, service, session.

The contract under test throughout is the one ``docs/serving.md`` states:
caching moves wall-clock, never bits.  Every cached artifact is a pure
function of its key's content, so a hit must be indistinguishable (modulo
timings and the ``cache`` provenance block) from a recompute.
"""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.api import (
    DesignRequest,
    get_designer,
    result_from_dict,
    result_to_dict,
)
from repro.core.algorithm import DesignParameters
from repro.core.serialization import problem_digest, solution_digest
from repro.incremental import SinkChurnConfig, churn_stream
from repro.incremental.engine import design_incremental
from repro.serve import (
    ArtifactCache,
    DesignService,
    DesignSession,
    ServiceOverloadedError,
    run_request_cached,
)
from repro.serve.cache import plan_key, request_digest
from repro.workloads.random_instances import RandomInstanceConfig, random_problem


@pytest.fixture(scope="module")
def problem():
    return random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=10, num_sinks=20),
        rng=42,
    )


@pytest.fixture(scope="module")
def parameters():
    return DesignParameters(seed=11)


# ---------------------------------------------------------------------------
# ArtifactCache: LRU, byte budget, counters, spill
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_put_get_and_counters(self):
        cache = ArtifactCache(max_bytes=1 << 20)
        assert cache.get("plan", "k1") is None
        cache.put("plan", "k1", {"value": 1})
        assert cache.get("plan", "k1") == {"value": 1}
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.puts == 1
        assert stats.entries == 1
        assert stats.by_namespace["plan"]["hits"] == 1
        assert 0 < stats.hit_rate < 1

    def test_none_values_are_rejected(self):
        cache = ArtifactCache()
        with pytest.raises(ValueError, match="cannot cache None"):
            cache.put("plan", "k", None)

    def test_lru_eviction_under_byte_pressure(self):
        payload = b"x" * 4096
        budget = 3 * len(pickle.dumps(payload))
        cache = ArtifactCache(max_bytes=budget)
        for index in range(3):
            cache.put("result", f"k{index}", payload)
        # Touch k0 so k1 becomes the least recently used line.
        assert cache.get("result", "k0") is not None
        cache.put("result", "k3", payload)
        assert cache.stats().evictions >= 1
        assert cache.get("result", "k1") is None
        assert cache.get("result", "k0") is not None
        assert cache.get("result", "k3") is not None
        assert cache.stats().current_bytes <= budget

    def test_oversized_artifact_is_admitted_then_evicted_first(self):
        small = b"y" * 64
        cache = ArtifactCache(max_bytes=len(pickle.dumps(small)) + 8)
        cache.put("result", "huge", b"z" * 65536)
        # Larger than the whole budget, but refusing it would be slower than
        # no cache at all.
        assert cache.get("result", "huge") is not None
        cache.put("result", "small", small)
        assert cache.get("result", "huge") is None
        assert cache.get("result", "small") is not None

    def test_spill_and_readmission(self, tmp_path):
        payload = {"rows": list(range(512))}
        size = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        cache = ArtifactCache(max_bytes=2 * size + 64, spill_dir=str(tmp_path))
        cache.put("plan", "a", payload)
        cache.put("plan", "b", payload)
        cache.put("plan", "c", payload)  # evicts "a" to disk
        stats = cache.stats()
        assert stats.evictions >= 1
        assert stats.spills >= 1
        assert any(path.suffix == ".pkl" for path in tmp_path.iterdir())
        # The spilled line comes back transparently and counts as a hit.
        assert cache.get("plan", "a") == payload
        assert cache.stats().spill_hits == 1

    def test_clear_drops_lines_and_spill_files_but_keeps_counters(self, tmp_path):
        cache = ArtifactCache(max_bytes=128, spill_dir=str(tmp_path))
        cache.put("plan", "a", b"p" * 256)
        cache.put("plan", "b", b"q" * 256)
        puts_before = cache.stats().puts
        cache.clear()
        stats = cache.stats()
        assert stats.entries == 0
        assert stats.current_bytes == 0
        assert stats.puts == puts_before
        assert not any(path.suffix == ".pkl" for path in tmp_path.iterdir())
        assert cache.get("plan", "a") is None

    def test_contains_does_not_touch_lru_or_counters(self):
        cache = ArtifactCache()
        cache.put("plan", "k", 1)
        hits_before = cache.stats().hits
        assert cache.contains("plan", "k")
        assert not cache.contains("plan", "missing")
        assert cache.stats().hits == hits_before


# ---------------------------------------------------------------------------
# Digest stability
# ---------------------------------------------------------------------------


class TestDigestStability:
    def test_problem_digest_survives_pickle_and_json_roundtrip(self, problem):
        from repro.core.serialization import problem_from_dict, problem_to_dict

        fresh = problem_digest(problem)
        pickled = problem_digest(pickle.loads(pickle.dumps(problem)))
        rehydrated = problem_digest(
            problem_from_dict(json.loads(json.dumps(problem_to_dict(problem))))
        )
        assert fresh == pickled == rehydrated

    def test_sharded_solution_digest_is_jobs_independent(self, problem, parameters):
        designer = get_designer("sharded:spaa03")
        digests = {
            solution_digest(
                designer.design(
                    DesignRequest(
                        problem=problem,
                        parameters=parameters,
                        strategy=designer.name,
                        options={"shards": 3, "jobs": jobs},
                    )
                ).solution
            )
            for jobs in (1, 2)
        }
        assert len(digests) == 1

    def test_request_digest_ignores_request_id_but_not_content(
        self, problem, parameters
    ):
        base = DesignRequest(
            problem=problem, parameters=parameters, request_id="a"
        )
        relabeled = DesignRequest(
            problem=problem, parameters=parameters, request_id="b"
        )
        other_strategy = DesignRequest(
            problem=problem, parameters=parameters, strategy="greedy"
        )
        assert request_digest(base) == request_digest(relabeled)
        assert request_digest(base) != request_digest(other_strategy)

    def test_seedless_requests_are_not_digestable(self, problem):
        seedless = DesignRequest(problem=problem, parameters=DesignParameters())
        assert seedless.seed is None
        assert request_digest(seedless) is None


# ---------------------------------------------------------------------------
# run_request_cached: miss -> hit bit-identical payloads
# ---------------------------------------------------------------------------


def _comparable(result) -> dict:
    document = result_to_dict(result)
    document.pop("stage_seconds", None)
    document.pop("cache", None)
    document.pop("request_id", None)
    return document


class TestRunRequestCached:
    def test_hit_is_bit_identical_to_miss(self, problem, parameters):
        cache = ArtifactCache()
        request = DesignRequest(problem=problem, parameters=parameters)
        first = run_request_cached(request, cache)
        second = run_request_cached(request, cache)
        assert first.cache["served_from_cache"] is False
        assert first.cache["stages"]["result"] == "miss"
        assert second.cache["served_from_cache"] is True
        assert second.cache["stages"]["result"] == "hit"
        assert _comparable(first) == _comparable(second)

    def test_result_entry_carries_document_and_problem_digest(
        self, problem, parameters
    ):
        cache = ArtifactCache()
        request = DesignRequest(problem=problem, parameters=parameters)
        result = run_request_cached(request, cache)
        entry = cache.get("result", result.cache["request_digest"])
        assert set(entry) == {"document", "problem_digest"}
        assert entry["problem_digest"] == problem_digest(problem)
        # The stored payload is the pure computation: provenance is stamped
        # per retrieval, never cached.
        assert entry["document"]["cache"] is None
        rehydrated = result_from_dict(entry["document"], problem)
        assert solution_digest(rehydrated.solution) == solution_digest(
            result.solution
        )

    def test_precomputed_digest_hint_matches_internal_digest(
        self, problem, parameters
    ):
        cache = ArtifactCache()
        request = DesignRequest(problem=problem, parameters=parameters)
        digest = request_digest(request)
        first = run_request_cached(request, cache, digest=digest)
        assert first.cache["request_digest"] == digest
        second = run_request_cached(request, cache)
        assert second.cache["served_from_cache"] is True
        assert _comparable(first) == _comparable(second)

    def test_seedless_request_is_never_result_cached(self, problem):
        cache = ArtifactCache()
        request = DesignRequest(problem=problem, parameters=DesignParameters())
        first = run_request_cached(request, cache)
        second = run_request_cached(request, cache)
        assert first.cache["stages"]["result"] == "bypass"
        assert second.cache["served_from_cache"] is False
        assert cache.stats().by_namespace.get("result") is None

    def test_bypass_and_no_cache_still_stamp_provenance(self, problem, parameters):
        request = DesignRequest(problem=problem, parameters=parameters)
        uncached = run_request_cached(request, None)
        bypassed = run_request_cached(request, ArtifactCache(), bypass=True)
        for result in (uncached, bypassed):
            assert result.cache["bypass"] is True
            assert result.cache["served_from_cache"] is False

    def test_stage_cache_reuse_across_different_seeds(self, problem):
        # Two requests differing only in rounding seed share formulation/LP
        # lines (the stage sits below the randomness).
        cache = ArtifactCache()
        run_request_cached(
            DesignRequest(problem=problem, parameters=DesignParameters(seed=1)),
            cache,
        )
        result = run_request_cached(
            DesignRequest(problem=problem, parameters=DesignParameters(seed=2)),
            cache,
        )
        assert result.cache["served_from_cache"] is False
        assert result.cache["stages"]["formulate"] == "hit"
        assert result.cache["stages"]["solve"] == "hit"


# ---------------------------------------------------------------------------
# DesignService: dedup, races, stats
# ---------------------------------------------------------------------------


class TestDesignService:
    def test_repeat_digest_burst_joins_in_flight_line(self, problem, parameters):
        request = DesignRequest(problem=problem, parameters=parameters)
        with DesignService(workers=2) as service:
            tickets = [service.submit(request) for _ in range(4)]
            results = [ticket.result(timeout=120) for ticket in tickets]
            stats = service.stats()
        assert stats["deduplicated"] >= 1
        assert stats["completed"] + stats["deduplicated"] == 4
        payloads = {json.dumps(_comparable(r), sort_keys=True) for r in results}
        assert len(payloads) == 1
        dedup = [r for r in results if (r.cache or {}).get("deduplicated")]
        assert len(dedup) == stats["deduplicated"]

    def test_concurrent_submitters_race_one_computation(self, problem, parameters):
        request = DesignRequest(problem=problem, parameters=parameters)
        results = []
        errors = []
        with DesignService(workers=2) as service:
            barrier = threading.Barrier(6)

            def submit():
                barrier.wait()
                try:
                    results.append(service.run(request, timeout=120))
                except Exception as error:  # pragma: no cover - fail loudly
                    errors.append(error)

            threads = [threading.Thread(target=submit) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        assert not errors
        assert len(results) == 6
        payloads = {json.dumps(_comparable(r), sort_keys=True) for r in results}
        assert len(payloads) == 1
        # Every submission either computed once, joined in flight, or hit the
        # result cache -- never a duplicate compute of the same digest.
        assert stats["cache"]["by_namespace"]["result"]["puts"] == 1

    def test_seedless_requests_are_never_deduplicated(self, problem):
        request = DesignRequest(problem=problem, parameters=DesignParameters())
        with DesignService(workers=2) as service:
            tickets = [service.submit(request) for _ in range(2)]
            for ticket in tickets:
                ticket.result(timeout=120)
            stats = service.stats()
        assert stats["deduplicated"] == 0
        assert stats["completed"] == 2

    def test_errors_are_forwarded_and_counted(self, problem, parameters):
        request = DesignRequest(
            problem=problem, parameters=parameters, strategy="no-such-strategy"
        )
        with DesignService(workers=1) as service:
            with pytest.raises(KeyError, match="no-such-strategy"):
                service.run(request, timeout=120)
            stats = service.stats()
        assert stats["errors"] == 1

    def test_submit_requires_started_service(self, problem, parameters):
        service = DesignService()
        with pytest.raises(RuntimeError, match="not started"):
            service.submit(DesignRequest(problem=problem, parameters=parameters))


# ---------------------------------------------------------------------------
# Backpressure: bounded queue, 429 on the HTTP front
# ---------------------------------------------------------------------------


@pytest.fixture
def gated_runner(monkeypatch):
    """Block the worker's compute behind a gate so the queue fills on cue.

    Yields ``(gate, entered)``: set ``gate`` to release the worker; wait on
    ``entered`` to know it has dequeued the first request.
    """
    import repro.serve.service as service_module

    gate = threading.Event()
    entered = threading.Event()
    real = service_module.run_request_cached

    def gated(request, *args, **kwargs):
        entered.set()
        assert gate.wait(timeout=60), "gate was never released"
        return real(request, *args, **kwargs)

    monkeypatch.setattr(service_module, "run_request_cached", gated)
    yield gate, entered
    gate.set()


class TestBackpressure:
    def test_max_queue_must_be_positive(self):
        with pytest.raises(ValueError, match="max_queue"):
            DesignService(max_queue=0)

    def test_full_queue_rejects_but_dedup_joins_bypass_it(self, problem, gated_runner):
        gate, entered = gated_runner
        requests = [
            DesignRequest(problem=problem, parameters=DesignParameters(seed=seed))
            for seed in (1, 2, 3)
        ]
        with DesignService(workers=1, max_queue=1) as service:
            running = service.submit(requests[0])
            assert entered.wait(timeout=30)
            queued = service.submit(requests[1])
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                service.submit(requests[2])
            # Equal-digest submits join the in-flight line without a slot...
            assert service.submit(requests[0]).deduplicated
            assert service.submit(requests[1]).deduplicated
            # ...while the rejected digest left no dead in-flight line behind:
            # resubmitting it overloads again instead of joining a future
            # that will never run.
            with pytest.raises(ServiceOverloadedError):
                service.submit(requests[2])
            gate.set()
            assert running.result(timeout=120).solution is not None
            assert queued.result(timeout=120).solution is not None
            stats = service.stats()
        assert stats["rejected"] == 2
        assert stats["deduplicated"] == 2
        assert stats["max_queue"] == 1
        assert stats["completed"] == 2

    def test_http_front_returns_429_with_retry_after(self, problem, gated_runner):
        import urllib.error
        import urllib.request

        from repro.api import request_to_dict
        from repro.serve import DesignServer

        gate, entered = gated_runner
        requests = [
            DesignRequest(problem=problem, parameters=DesignParameters(seed=seed))
            for seed in (1, 2, 3)
        ]
        with DesignServer(DesignService(workers=1, max_queue=1)) as server:
            running = server.service.submit(requests[0])
            assert entered.wait(timeout=30)
            queued = server.service.submit(requests[1])
            body = json.dumps(request_to_dict(requests[2])).encode()
            post = urllib.request.Request(
                server.url + "/design",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(post, timeout=30)
            error = excinfo.value
            assert error.code == 429
            assert error.headers["Retry-After"] == "1"
            assert "queue is full" in json.loads(error.read())["error"]
            gate.set()
            running.result(timeout=120)
            queued.result(timeout=120)
            assert server.service.stats()["rejected"] == 1


# ---------------------------------------------------------------------------
# DesignSession: churn stream equals independent incremental updates
# ---------------------------------------------------------------------------


class TestDesignSession:
    def test_multi_event_stream_matches_independent_updates(
        self, problem, parameters
    ):
        events = ["flash-crowd", "sink-churn", "isp-outage"]
        stream = list(
            churn_stream(
                problem,
                events,
                seed=5,
                churn_config=SinkChurnConfig(fraction=0.15),
            )
        )
        session = DesignSession(
            problem,
            strategy="sharded:spaa03",
            parameters=parameters,
            options={"shards": 2, "jobs": 1},
        )
        standing = session.ensure_design()

        # Independent chain: each event pays its own design_incremental call
        # from the previous state, with no shared plan or stage cache.
        current_problem = problem
        current = standing
        for (_event, delta, new_problem), session_result in zip(
            stream, session.stream(event_delta for _, event_delta, _ in stream)
        ):
            current = design_incremental(
                current,
                new_problem,
                parameters=parameters,
                options={"shards": 2, "jobs": 1},
                previous_problem=current_problem,
                delta=delta,
            )
            current_problem = new_problem
            assert solution_digest(session_result.solution) == solution_digest(
                current.solution
            )

        summary = session.summary()
        assert summary["events"] == len(events)
        # flash-crowd and isp-outage keep the sink set stable, so the
        # standing plan rebinds; sink-churn changes it and rebuilds.
        assert summary["plan_reuses"] == 2
        assert [e.plan_reused for e in session.events] == [True, False, True]

    def test_initial_design_adopts_cached_partition_plan(self, problem, parameters):
        cache = ArtifactCache()
        session = DesignSession(
            problem,
            strategy="sharded:spaa03",
            parameters=parameters,
            options={"shards": 2, "jobs": 1},
            cache=cache,
        )
        session.ensure_design()
        key = plan_key(problem_digest(problem), "auto", 2)
        assert cache.contains("plan", key)
        assert session._plan is not None

    def test_session_provenance_is_stamped(self, problem, parameters):
        session = DesignSession(
            problem,
            parameters=parameters,
            options={"shards": 2, "jobs": 1},
            session_id="prov",
        )
        initial = session.ensure_design()
        assert initial.cache["session_id"] == "prov"
        _event, delta, _new = next(churn_stream(problem, ["flash-crowd"], seed=3))
        result = session.apply_delta(delta)
        assert result.cache["session_id"] == "prov"
        assert result.cache["session_event"] == 1
        assert result.cache["stages"]["plan"] == "session-reuse"

    def test_cache_false_disables_caching(self, problem, parameters):
        session = DesignSession(problem, parameters=parameters, cache=False)
        session.ensure_design()
        assert session.cache is None
        assert session.summary()["cache"] is None


# ---------------------------------------------------------------------------
# Schema: v2 cache block round-trips, v1 documents still load
# ---------------------------------------------------------------------------


class TestResultSchemaVersions:
    def test_v2_roundtrip_preserves_cache_block(self, problem, parameters):
        cache = ArtifactCache()
        result = run_request_cached(
            DesignRequest(problem=problem, parameters=parameters), cache
        )
        document = json.loads(json.dumps(result_to_dict(result)))
        assert document["schema_version"] == 2
        restored = result_from_dict(document, problem)
        assert restored.cache == result.cache

    def test_v1_document_without_cache_block_loads(self, problem, parameters):
        result = get_designer("spaa03").design(
            DesignRequest(problem=problem, parameters=parameters)
        )
        document = result_to_dict(result)
        document["schema_version"] = 1
        del document["cache"]
        restored = result_from_dict(json.loads(json.dumps(document)), problem)
        assert restored.cache is None
        assert solution_digest(restored.solution) == solution_digest(
            result.solution
        )
