"""Tests for flow validation helpers (repro.flow.validation)."""

from __future__ import annotations

import pytest

from repro.flow import (
    FlowNetwork,
    assert_feasible_flow,
    flow_conservation_violations,
    is_feasible_flow,
    max_flow,
)


def _path_network() -> tuple[FlowNetwork, int, int, int, int]:
    net = FlowNetwork()
    s, a, t = net.add_node(), net.add_node(), net.add_node()
    e1 = net.add_edge(s, a, capacity=2.0)
    e2 = net.add_edge(a, t, capacity=2.0)
    return net, s, a, t, e1


class TestValidation:
    def test_zero_flow_is_feasible(self):
        net, s, _a, t, _e1 = _path_network()
        assert is_feasible_flow(net, s, t)
        assert flow_conservation_violations(net, s, t) == {}

    def test_solved_flow_is_feasible(self):
        net, s, _a, t, _e1 = _path_network()
        max_flow(net, s, t)
        assert is_feasible_flow(net, s, t)
        assert_feasible_flow(net, s, t)

    def test_conservation_violation_detected(self):
        net, s, a, t, e1 = _path_network()
        net._push(e1, 1.5)  # push into 'a' without pushing out
        violations = flow_conservation_violations(net, s, t)
        assert a in violations
        assert violations[a] == pytest.approx(1.5)
        assert not is_feasible_flow(net, s, t)
        with pytest.raises(AssertionError):
            assert_feasible_flow(net, s, t)

    def test_capacity_violation_detected(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        edge = net.add_edge(s, t, capacity=1.0)
        # Force an over-capacity flow by pushing twice directly.
        net._arc_cap[edge] = -0.5
        net._arc_cap[edge ^ 1] = 1.5
        assert not is_feasible_flow(net, s, t)
        with pytest.raises(AssertionError):
            assert_feasible_flow(net, s, t)

    def test_terminals_excluded_from_conservation(self):
        net, s, _a, t, _e1 = _path_network()
        max_flow(net, s, t)
        # Source/sink imbalance is expected and must not be flagged.
        assert s not in flow_conservation_violations(net, s, t)
        assert t not in flow_conservation_violations(net, s, t)
