"""Tests for min-cost flow (repro.flow.mincost), cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.flow import FlowNetwork, assert_feasible_flow, min_cost_flow, min_cost_max_flow


class TestMinCostMaxFlow:
    def test_two_path_network_prefers_cheap_path(self):
        net = FlowNetwork()
        s, a, b, t = (net.add_node() for _ in range(4))
        cheap_1 = net.add_edge(s, a, capacity=2, cost=1.0)
        cheap_2 = net.add_edge(a, t, capacity=2, cost=1.0)
        pricey_1 = net.add_edge(s, b, capacity=2, cost=5.0)
        pricey_2 = net.add_edge(b, t, capacity=2, cost=5.0)
        result = min_cost_max_flow(net, s, t)
        assert result.value == pytest.approx(4.0)
        assert result.cost == pytest.approx(2 * 2.0 + 2 * 10.0)
        assert net.flow_on(cheap_1) == pytest.approx(2.0)
        assert net.flow_on(pricey_1) == pytest.approx(2.0)
        assert net.flow_on(cheap_2) == pytest.approx(2.0)
        assert net.flow_on(pricey_2) == pytest.approx(2.0)

    def test_limit_uses_cheapest_paths_first(self):
        net = FlowNetwork()
        s, a, b, t = (net.add_node() for _ in range(4))
        net.add_edge(s, a, capacity=2, cost=1.0)
        net.add_edge(a, t, capacity=2, cost=1.0)
        net.add_edge(s, b, capacity=2, cost=5.0)
        net.add_edge(b, t, capacity=2, cost=5.0)
        result = min_cost_max_flow(net, s, t, limit=2.0)
        assert result.value == pytest.approx(2.0)
        assert result.cost == pytest.approx(4.0)

    def test_cost_matches_stored_flow(self):
        net = FlowNetwork()
        s, a, t = (net.add_node() for _ in range(3))
        net.add_edge(s, a, capacity=3, cost=2.0)
        net.add_edge(a, t, capacity=2, cost=1.0)
        result = min_cost_max_flow(net, s, t)
        assert result.value == pytest.approx(2.0)
        assert result.cost == pytest.approx(net.total_flow_cost())
        assert_feasible_flow(net, s, t)

    def test_negative_costs_handled(self):
        """A negative-cost edge should be used preferentially (Bellman-Ford init)."""
        net = FlowNetwork()
        s, a, b, t = (net.add_node() for _ in range(4))
        net.add_edge(s, a, capacity=1, cost=1.0)
        net.add_edge(a, t, capacity=1, cost=-3.0)
        net.add_edge(s, b, capacity=1, cost=1.0)
        net.add_edge(b, t, capacity=1, cost=1.0)
        result = min_cost_max_flow(net, s, t)
        assert result.value == pytest.approx(2.0)
        assert result.cost == pytest.approx((1.0 - 3.0) + (1.0 + 1.0))

    def test_same_source_sink_rejected(self):
        net = FlowNetwork()
        s = net.add_node()
        with pytest.raises(ValueError):
            min_cost_max_flow(net, s, s)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_match_networkx(self, seed):
        rng = np.random.default_rng(seed + 100)
        num_nodes = int(rng.integers(4, 10))
        net = FlowNetwork()
        nodes = [net.add_node() for _ in range(num_nodes)]
        graph = nx.DiGraph()
        graph.add_nodes_from(range(num_nodes))
        for _ in range(int(rng.integers(num_nodes, 3 * num_nodes))):
            u, v = rng.integers(0, num_nodes, size=2)
            if u == v:
                continue
            capacity = int(rng.integers(1, 8))
            cost = int(rng.integers(0, 10))
            net.add_edge(nodes[int(u)], nodes[int(v)], capacity, cost)
            if graph.has_edge(int(u), int(v)):
                graph[int(u)][int(v)]["capacity"] += capacity
                # Parallel edges with different costs cannot be merged exactly;
                # keep the cheaper cost to stay consistent (rare with few edges).
                graph[int(u)][int(v)]["weight"] = min(graph[int(u)][int(v)]["weight"], cost)
                net.reset_flow()
                pytest.skip("parallel edge drawn; skip to keep oracle exact")
            else:
                graph.add_edge(int(u), int(v), capacity=capacity, weight=cost)
        source, sink = 0, num_nodes - 1
        expected_value = nx.maximum_flow_value(graph, source, sink)
        expected_cost = nx.cost_of_flow(
            graph, nx.max_flow_min_cost(graph, source, sink)
        )
        result = min_cost_max_flow(net, source, sink)
        assert result.value == pytest.approx(expected_value, abs=1e-9)
        assert result.cost == pytest.approx(expected_cost, abs=1e-6)
        assert_feasible_flow(net, source, sink)


class TestMinCostFlowWithSupplies:
    def test_simple_transshipment(self):
        net = FlowNetwork()
        a, b, c = (net.add_node() for _ in range(3))
        net.add_edge(a, b, capacity=5, cost=1.0)
        net.add_edge(b, c, capacity=5, cost=1.0)
        net.add_edge(a, c, capacity=2, cost=3.0)
        result = min_cost_flow(net, {a: 4.0, c: -4.0})
        assert result.satisfied
        assert result.value == pytest.approx(4.0)
        # Direct edge costs 3/unit, two-hop path costs 2/unit -> use the path.
        assert result.cost == pytest.approx(4 * 2.0)

    def test_unbalanced_supplies_rejected(self):
        net = FlowNetwork()
        a, b = net.add_node(), net.add_node()
        net.add_edge(a, b, capacity=1)
        with pytest.raises(ValueError):
            min_cost_flow(net, {a: 2.0, b: -1.0})

    def test_unsatisfiable_demand_reported(self):
        net = FlowNetwork()
        a, b = net.add_node(), net.add_node()
        net.add_edge(a, b, capacity=1, cost=1.0)
        result = min_cost_flow(net, {a: 3.0, b: -3.0})
        assert not result.satisfied
        assert result.value == pytest.approx(1.0)
