"""Differential harness: incremental re-design vs from-scratch, over churn.

Each case is a seeded (workload, churn-script) pair.  The standing design
comes from the sharded pipeline; every churn event is then applied twice --
once through :func:`repro.design_incremental` against the standing design,
once from scratch through the same ``sharded:<inner>`` designer -- and the
incremental result must stay within ``COST_TOLERANCE`` of the from-scratch
cost while serving every demand and passing the audit.

The matrix is calibrated: each (workload, event, inner) combination below
was measured to sit comfortably inside the tolerance.  Warm-starting is a
heuristic -- on very small instances a fresh global draw can beat any
locally-patched design by more than 5%, so sub-scale combinations (e.g.
sink *removals* on the 18-sink Akamai-like topology) are exercised with
join-only churn instead.
"""

from __future__ import annotations

import pytest

from repro import DesignParameters, design_incremental
from repro.api import DesignRequest, get_designer
from repro.incremental import SinkChurnConfig, churn_stream
from repro.workloads import (
    AkamaiLikeConfig,
    RandomInstanceConfig,
    generate_akamai_like_topology,
    random_problem,
)
from repro.workloads.internet_scale import (
    InternetScaleConfig,
    generate_internet_scale_problem,
)

COST_TOLERANCE = 1.05

JOIN_ONLY = SinkChurnConfig(fraction=0.1, join_fraction=1.0)

# (workload, inner strategy, churn script, base seed, churn config)
PAIRS = [
    ("random", "greedy", ("sink-churn",), 0, None),
    ("random", "greedy", ("sink-churn",), 1, None),
    ("random", "greedy", ("sink-churn",), 2, None),
    ("random", "greedy", ("flash-crowd",), 0, None),
    ("random", "greedy", ("flash-crowd",), 1, None),
    ("random", "greedy", ("regional-outage",), 0, None),
    ("random", "greedy", ("regional-outage",), 1, None),
    ("random", "greedy", ("isp-outage",), 0, None),
    ("random", "greedy", ("isp-outage",), 1, None),
    ("random", "greedy", ("sink-churn", "flash-crowd", "regional-outage"), 3, None),
    ("random", "spaa03", ("flash-crowd",), 0, None),
    ("random", "spaa03", ("regional-outage",), 0, None),
    ("akamai", "greedy", ("flash-crowd",), 0, None),
    ("akamai", "greedy", ("flash-crowd",), 1, None),
    ("akamai", "greedy", ("flash-crowd",), 2, None),
    ("akamai", "greedy", ("regional-outage",), 0, None),
    ("akamai", "greedy", ("regional-outage",), 1, None),
    ("akamai", "greedy", ("sink-churn",), 0, JOIN_ONLY),
    ("akamai", "greedy", ("sink-churn",), 1, JOIN_ONLY),
    ("akamai", "greedy", ("sink-churn",), 2, JOIN_ONLY),
    ("inet", "greedy", ("sink-churn",), 0, None),
    ("inet", "greedy", ("sink-churn",), 1, None),
    ("inet", "greedy", ("flash-crowd",), 0, None),
    ("inet", "greedy", ("regional-outage",), 0, None),
    ("inet", "spaa03", ("sink-churn",), 0, None),
    ("inet", "spaa03", ("sink-churn",), 1, None),
]


def make_workload(kind: str, seed: int):
    if kind == "random":
        return random_problem(
            RandomInstanceConfig(num_streams=2, num_reflectors=12, num_sinks=40),
            rng=seed,
        )
    if kind == "akamai":
        topology, _ = generate_akamai_like_topology(
            AkamaiLikeConfig(
                num_regions=3,
                colos_per_region=6,
                num_isps=3,
                num_streams=2,
                reflectors_per_colo=2,
            ),
            rng=seed,
        )
        return topology.to_problem()
    if kind == "inet":
        problem, _ = generate_internet_scale_problem(
            InternetScaleConfig(
                num_sinks=120, sinks_per_metro=12, num_isps=4, num_streams=2
            ),
            rng=seed,
        )
        return problem
    raise ValueError(f"unknown workload kind {kind!r}")


def standing_design(problem, inner: str, seed: int):
    designer = get_designer(f"sharded:{inner}")
    parameters = DesignParameters(seed=1000 + seed)
    result = designer.design(
        DesignRequest(
            problem=problem,
            parameters=parameters,
            strategy=designer.name,
            options={"shards": "auto", "jobs": 1},
        )
    )
    return result, parameters, designer


def _pair_id(pair) -> str:
    kind, inner, script, seed, config = pair
    suffix = "-joins" if config is JOIN_ONLY else ""
    return f"{kind}-{inner}-{'+'.join(script)}-s{seed}{suffix}"


@pytest.mark.parametrize("pair", PAIRS, ids=_pair_id)
def test_incremental_matches_scratch_within_tolerance(pair):
    kind, inner, script, seed, config = pair
    problem = make_workload(kind, seed)
    current, parameters, designer = standing_design(problem, inner, seed)
    current_problem = problem
    for event, delta, new_problem in churn_stream(
        problem, list(script), seed=seed, churn_config=config
    ):
        incremental = design_incremental(
            current,
            new_problem,
            parameters=parameters,
            options={"shards": "auto", "jobs": 1},
            previous_problem=current_problem,
            delta=delta,
        )
        scratch = designer.design(
            DesignRequest(
                problem=new_problem,
                parameters=parameters,
                strategy=designer.name,
                options={"shards": "auto", "jobs": 1},
            )
        )
        scratch_cost = scratch.solution.total_cost()
        incremental_cost = incremental.solution.total_cost()
        ratio = incremental_cost / scratch_cost if scratch_cost else 1.0
        assert ratio <= COST_TOLERANCE, (
            f"event {event}: incremental cost {incremental_cost:.3f} is "
            f"{ratio:.4f}x the from-scratch cost {scratch_cost:.3f}"
        )
        assert incremental.solution.unserved_demands() == []
        assert incremental.audit is not None
        # Audit no worse than from-scratch: every threshold the from-scratch
        # design meets, the incremental design meets too (some churn draws
        # raise thresholds past what the inner heuristic attains at all --
        # both sides then degrade identically).
        floor = min(1.0, scratch.audit.min_weight_fraction)
        assert incremental.audit.min_weight_fraction >= floor - 1e-9
        assert incremental.strategy == f"incremental:{inner}"
        current, current_problem = incremental, new_problem


@pytest.mark.parametrize("kind", ["random", "akamai", "inet"])
def test_identity_churn_returns_standing_design_bit_identically(kind):
    problem = make_workload(kind, seed=0)
    standing, parameters, _designer = standing_design(problem, "greedy", seed=0)
    ((event, delta, new_problem),) = list(
        churn_stream(problem, ["identity"], seed=0)
    )
    assert event == "identity"
    assert delta.is_empty
    result = design_incremental(
        standing,
        new_problem,
        parameters=parameters,
        options={"shards": "auto", "jobs": 1},
        previous_problem=problem,
        delta=delta,
    )
    assert result.metadata.get("incremental_identity") is True
    assert result.solution.assignments == standing.solution.assignments
    assert result.solution.total_cost() == standing.solution.total_cost()
    assert result.solution.unserved_demands() == []
