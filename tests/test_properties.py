"""Cross-module property-based tests (hypothesis).

These complement the per-module property tests with invariants that tie the
pipeline together: LP relaxation vs feasible designs, rounding support
containment, box-construction mass accounting, solution cost monotonicity and
serialization round-trips -- each checked over randomly generated instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import greedy_design
from repro.core.formulation import build_formulation
from repro.core.gap import build_boxes_for_demand
from repro.core.problem import Demand
from repro.core.rounding import RoundingParameters, round_solution
from repro.core.serialization import problem_from_dict, problem_to_dict
from repro.core.solution import OverlaySolution
from repro.simulation.reconstruction import post_reconstruction_loss
from repro.workloads import RandomInstanceConfig, random_problem

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _instance(seed: int):
    return random_problem(
        RandomInstanceConfig(num_streams=1, num_reflectors=5, num_sinks=5), rng=seed
    )


class TestPipelineInvariants:
    @_SETTINGS
    @given(st.integers(0, 10_000))
    def test_lp_bound_below_feasible_greedy_cost(self, seed):
        problem = _instance(seed)
        formulation = build_formulation(problem)
        lp = formulation.solve()
        assert lp.is_optimal
        greedy = greedy_design(problem)
        if all(greedy.weight_satisfaction(d) >= 1.0 - 1e-9 for d in problem.demands):
            assert lp.objective <= greedy.total_cost() + 1e-6

    @_SETTINGS
    @given(st.integers(0, 10_000))
    def test_fractional_solution_respects_lp_constraints(self, seed):
        problem = _instance(seed)
        formulation = build_formulation(problem)
        lp = formulation.solve()
        for constraint in formulation.model.constraints:
            assert constraint.violation(lp.values) <= 1e-6

    @_SETTINGS
    @given(st.integers(0, 10_000), st.floats(1.0, 64.0))
    def test_rounding_support_contained_in_fractional_support(self, seed, c):
        problem = _instance(seed)
        formulation = build_formulation(problem)
        fractional = formulation.fractional_solution(formulation.solve()).support()
        rounded = round_solution(
            problem, fractional, RoundingParameters(c=c, seed=seed)
        )
        assert set(rounded.x) <= set(fractional.x)
        multiplier = rounded.multiplier
        for key, value in rounded.x.items():
            assert value == pytest.approx(fractional.x[key]) or value == pytest.approx(
                1.0 / multiplier
            )

    @_SETTINGS
    @given(st.integers(0, 10_000))
    def test_serialization_roundtrip_preserves_weights(self, seed):
        problem = _instance(seed)
        restored = problem_from_dict(problem_to_dict(problem))
        for demand in problem.demands:
            for reflector in problem.candidate_reflectors(demand):
                assert restored.edge_weight(demand, reflector) == pytest.approx(
                    problem.edge_weight(demand, reflector)
                )
            assert restored.demand_weight(demand) == pytest.approx(
                problem.demand_weight(demand)
            )


class TestBoxConstructionProperties:
    DEMAND = Demand("d", "s", 0.99)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 6.0), st.floats(0.01, 1.0)),
            min_size=1,
            max_size=8,
        )
    )
    def test_box_count_and_interval_bounds(self, raw_entries):
        entries = [
            (f"r{i}", weight, mass) for i, (weight, mass) in enumerate(raw_entries)
        ]
        total_mass = sum(mass for _, _, mass in entries)
        boxes = build_boxes_for_demand(self.DEMAND, entries)
        # Never more boxes than the paper's s_j = floor(2 * mass), and at least
        # one whenever there is positive mass (degenerate-case handling).
        assert len(boxes) <= max(int(2 * total_mass + 1e-9), 1)
        assert len(boxes) >= 1
        weights = [w for _, w, _ in entries]
        for box in boxes:
            assert min(weights) - 1e-9 <= box.lower <= box.upper <= max(weights) + 1e-9
        # Boxes are ordered: the upper bound never increases with the index.
        for earlier, later in zip(boxes, boxes[1:]):
            assert earlier.upper >= later.upper - 1e-9


class TestSolutionMonotonicity:
    @_SETTINGS
    @given(st.integers(0, 10_000))
    def test_adding_assignments_never_hurts_reliability(self, seed):
        problem = _instance(seed)
        rng = np.random.default_rng(seed)
        demand = problem.demands[int(rng.integers(problem.num_demands))]
        candidates = problem.candidate_reflectors(demand)
        if len(candidates) < 2:
            return
        small = OverlaySolution.from_assignments(problem, {demand.key: candidates[:1]})
        large = OverlaySolution.from_assignments(problem, {demand.key: candidates[:2]})
        assert large.success_probability(demand) >= small.success_probability(demand) - 1e-12
        assert large.delivered_weight(demand) >= small.delivered_weight(demand) - 1e-12
        assert large.total_cost() >= small.total_cost() - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 4), st.integers(0, 10_000))
    def test_reconstruction_loss_decreases_with_more_copies(
        self, num_packets, num_paths, seed
    ):
        rng = np.random.default_rng(seed)
        copies = [rng.random(num_packets) < 0.7 for _ in range(num_paths)]
        loss_all = post_reconstruction_loss(copies)
        loss_fewer = post_reconstruction_loss(copies[:-1]) if num_paths > 1 else 1.0
        assert loss_all <= loss_fewer + 1e-12
        assert 0.0 <= loss_all <= 1.0
