"""Tests for the Section-5 modified GAP rounding (repro.core.gap)."""

from __future__ import annotations

import pytest

from repro.core.formulation import build_formulation
from repro.core.gap import (
    WeightBox,
    build_boxes_for_demand,
    build_gap_network,
    gap_round,
    solve_gap,
)
from repro.core.problem import Demand
from repro.core.rounding import RoundingParameters, round_solution
from repro.flow import assert_feasible_flow


@pytest.fixture
def rounded_tiny(tiny_problem):
    formulation = build_formulation(tiny_problem)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    return round_solution(tiny_problem, fractional, RoundingParameters(c=64.0, seed=0))


class TestBoxConstruction:
    DEMAND = Demand("d", "s", 0.99)

    def test_single_full_unit_gives_one_box(self):
        boxes = build_boxes_for_demand(self.DEMAND, [("r1", 3.0, 1.0)])
        # floor(2 * 1.0) = 2 boxes, last dropped -> 1 box.
        assert len(boxes) == 1
        assert boxes[0].upper == pytest.approx(3.0)
        assert boxes[0].contains(3.0)

    def test_two_units_of_mass_give_three_boxes(self):
        entries = [("r1", 5.0, 1.0), ("r2", 4.0, 0.6), ("r3", 3.0, 0.4)]
        boxes = build_boxes_for_demand(self.DEMAND, entries)
        # total mass 2.0 -> 4 raw boxes, drop last -> 3.
        assert len(boxes) == 3
        # Boxes are ordered by decreasing weight intervals.
        for earlier, later in zip(boxes, boxes[1:]):
            assert earlier.lower >= later.upper - 1e-12 or earlier.lower >= later.lower

    def test_interval_endpoints_follow_sorted_weights(self):
        entries = [("a", 10.0, 0.5), ("b", 6.0, 0.5), ("c", 2.0, 0.5)]
        boxes = build_boxes_for_demand(self.DEMAND, entries)
        # cumulative crosses 0.5 at a, 1.0 at b, 1.5 at c -> 3 raw boxes, 2 kept.
        assert len(boxes) == 2
        assert boxes[0].upper == pytest.approx(10.0)
        assert boxes[0].lower == pytest.approx(10.0)
        assert boxes[1].upper == pytest.approx(10.0)
        assert boxes[1].lower == pytest.approx(6.0)

    def test_degenerate_mass_keeps_one_box_by_default(self):
        boxes = build_boxes_for_demand(self.DEMAND, [("r1", 3.0, 0.6)])
        assert len(boxes) == 1

    def test_degenerate_mass_dropped_in_strict_paper_mode(self):
        boxes = build_boxes_for_demand(
            self.DEMAND, [("r1", 3.0, 0.6)], keep_degenerate_box=False
        )
        assert boxes == []

    def test_zero_mass_gives_no_boxes(self):
        assert build_boxes_for_demand(self.DEMAND, [("r1", 3.0, 0.0)]) == []
        assert build_boxes_for_demand(self.DEMAND, []) == []

    def test_box_contains_tolerance(self):
        box = WeightBox(("d", "s"), 0, upper=2.0, lower=1.0)
        assert box.contains(1.0)
        assert box.contains(2.0)
        assert box.contains(1.5)
        assert not box.contains(0.5)
        assert not box.contains(2.5)


class TestGapNetworkStructure:
    def test_network_levels_and_capacities(self, tiny_problem, rounded_tiny):
        gap = build_gap_network(tiny_problem, rounded_tiny)
        net = gap.network
        assert net.label_of(gap.source) == "s"
        assert net.label_of(gap.sink) == "T"
        # Every pair edge has doubled capacity 2; every source->reflector edge 2F.
        for key, edge_id in gap.pair_edge.items():
            assert net.edge(edge_id).capacity == pytest.approx(2.0)
        for edge in net.edges():
            tail_label = net.label_of(edge.tail)
            head_label = net.label_of(edge.head)
            if tail_label == "s":
                reflector = head_label[1]
                assert edge.capacity == pytest.approx(2.0 * tiny_problem.fanout(reflector))
            if head_label == "T":
                assert edge.capacity == pytest.approx(1.0)

    def test_total_demand_counts_boxes(self, tiny_problem, rounded_tiny):
        gap = build_gap_network(tiny_problem, rounded_tiny)
        assert gap.total_demand == len(gap.boxes)
        assert gap.total_demand >= tiny_problem.num_demands  # at least one box per served demand

    def test_pair_edges_connect_only_matching_boxes(self, tiny_problem, rounded_tiny):
        gap = build_gap_network(tiny_problem, rounded_tiny)
        demand_lookup = {d.key: d for d in tiny_problem.demands}
        for key, edges in gap.pair_box_edges.items():
            reflector, demand_key = key
            weight = tiny_problem.edge_weight(demand_lookup[demand_key], reflector)
            for edge_id in edges:
                head = gap.network.edge(edge_id).head
                label = gap.network.label_of(head)
                assert label[0] == "box" and label[1] == demand_key
                box = next(
                    b
                    for b in gap.boxes
                    if b.demand_key == demand_key and b.index == label[2]
                )
                assert box.contains(weight)


class TestGapSolve:
    def test_flow_feasible_and_boxes_served(self, tiny_problem, rounded_tiny):
        gap = build_gap_network(tiny_problem, rounded_tiny)
        result = solve_gap(tiny_problem, gap)
        assert_feasible_flow(gap.network, gap.source, gap.sink)
        assert result.boxes_served <= result.boxes_total
        assert result.flow_value == pytest.approx(result.boxes_served, abs=1e-6)
        assert result.assignments, "expected at least one assignment"

    def test_assignments_subset_of_support(self, tiny_problem, rounded_tiny):
        result = gap_round(tiny_problem, rounded_tiny)
        assert set(result.assignments) <= set(rounded_tiny.x.keys())

    def test_weight_preserved_at_least_quarter(self, small_random_problem):
        """Section-5 guarantee: final weight >= 1/4 of the requirement (with paper c)."""
        formulation = build_formulation(small_random_problem)
        fractional = formulation.fractional_solution(formulation.solve()).support()
        rounded = round_solution(
            small_random_problem, fractional, RoundingParameters(c=64.0, seed=1)
        )
        result = gap_round(small_random_problem, rounded)
        served: dict = {}
        for reflector, demand_key in result.assignments:
            served.setdefault(demand_key, []).append(reflector)
        for demand in small_random_problem.demands:
            delivered = sum(
                small_random_problem.edge_weight(demand, r)
                for r in served.get(demand.key, [])
            )
            required = small_random_problem.demand_weight(demand)
            assert delivered >= required / 4.0 - 1e-9

    def test_fanout_violation_bounded_by_four(self, small_random_problem):
        formulation = build_formulation(small_random_problem)
        fractional = formulation.fractional_solution(formulation.solve()).support()
        rounded = round_solution(
            small_random_problem, fractional, RoundingParameters(c=64.0, seed=3)
        )
        result = gap_round(small_random_problem, rounded)
        load: dict = {}
        for reflector, _demand_key in result.assignments:
            load[reflector] = load.get(reflector, 0) + 1
        for reflector, used in load.items():
            assert used <= 4 * small_random_problem.fanout(reflector) + 1e-9

    def test_cost_accounts_delivery_edges(self, tiny_problem, rounded_tiny):
        result = gap_round(tiny_problem, rounded_tiny)
        expected = sum(
            tiny_problem.delivery_cost(reflector, sink, stream)
            for reflector, (sink, stream) in result.assignments
        )
        assert result.cost == pytest.approx(expected)

    def test_empty_rounding_gives_empty_result(self, tiny_problem, rounded_tiny):
        rounded_tiny.x = {}
        result = gap_round(tiny_problem, rounded_tiny)
        assert result.assignments == set()
        assert result.boxes_total == 0
