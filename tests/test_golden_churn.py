"""Golden regression corpus for the incremental engine under sink churn.

Two seed-pinned churn scripts -- 5% sink churn on the ``random-mid`` and
``akamai-small`` reference workloads -- run through
:func:`repro.design_incremental` step by step, snapshotting each post-update
design (cost, fanout, audit digest, delta summary and the impact metadata)
against committed fixtures under ``tests/goldens/churn-<workload>.json``.

A drift here means the delta model, the impact analysis or the incremental
engine changed behaviour.  If intentional, regenerate and commit::

    python -m pytest tests/test_golden_churn.py --regen-goldens
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro import DesignParameters, design_incremental
from repro.api import DesignRequest, get_designer
from repro.api.types import audit_to_dict
from repro.incremental import SinkChurnConfig, churn_stream
from test_golden_designs import GOLDEN_SEED, WORKLOADS, _digest, _round

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The two churned workloads (stable names = fixture file stems).
CHURN_WORKLOADS = ["random-mid", "akamai-small"]

#: Two steps of 5% sink churn (joins and leaves), the scripted scenario.
CHURN_SCRIPT = ["sink-churn", "sink-churn"]

CHURN_CONFIG = SinkChurnConfig(fraction=0.05)


def churn_golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"churn-{workload}.json"


def run_churn_script(workload: str) -> list[dict]:
    problem = WORKLOADS[workload]()
    parameters = DesignParameters(seed=GOLDEN_SEED)
    designer = get_designer("sharded:greedy")
    current = designer.design(
        DesignRequest(
            problem=problem,
            parameters=parameters,
            strategy=designer.name,
            options={"shards": 3, "jobs": 1},
        )
    )
    current_problem = problem
    steps: list[dict] = []
    for event, delta, new_problem in churn_stream(
        problem, CHURN_SCRIPT, seed=GOLDEN_SEED, churn_config=CHURN_CONFIG
    ):
        result = design_incremental(
            current,
            new_problem,
            parameters=parameters,
            options={"shards": 3, "jobs": 1},
            previous_problem=current_problem,
            delta=delta,
        )
        solution = result.solution
        steps.append(
            {
                "event": event,
                "delta": delta.summary(),
                "total_cost": _round(solution.total_cost()),
                "reflectors_built": len(solution.built_reflectors),
                "assignments": sum(len(v) for v in solution.assignments.values()),
                "unserved_demands": len(solution.unserved_demands()),
                "max_fanout_factor": _round(solution.max_fanout_factor()),
                "audit_digest": _digest(audit_to_dict(result.audit)),
                "dirty_shards": result.metadata.get("incremental_dirty_shards"),
                "fallback": result.metadata.get("incremental_fallback"),
            }
        )
        current, current_problem = result, new_problem
    return steps


@pytest.mark.parametrize("workload", CHURN_WORKLOADS)
def test_golden_churn_scripts(workload, regen_goldens):
    observed = {
        "workload": workload,
        "seed": GOLDEN_SEED,
        "script": CHURN_SCRIPT,
        "churn_fraction": CHURN_CONFIG.fraction,
        "steps": run_churn_script(workload),
    }
    path = churn_golden_path(workload)
    if regen_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(observed, indent=2, sort_keys=True) + "\n")
        return

    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with "
            "`python -m pytest tests/test_golden_churn.py --regen-goldens`"
        )
    golden = json.loads(path.read_text())
    assert golden.get("seed") == GOLDEN_SEED, "seed pin changed; regenerate goldens"
    assert golden.get("script") == CHURN_SCRIPT, "script changed; regenerate goldens"
    assert len(golden["steps"]) == len(observed["steps"])
    for index, (expected, actual) in enumerate(
        zip(golden["steps"], observed["steps"])
    ):
        assert sorted(actual) == sorted(expected), (
            f"{workload} step {index}: snapshot fields changed"
        )
        for field, want in expected.items():
            got = actual[field]
            if isinstance(want, float):
                assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9), (
                    f"{workload} step {index}/{field}: {got!r} != {want!r}"
                )
            else:
                assert got == want, (
                    f"{workload} step {index}/{field}: {got!r} != {want!r}"
                )
