"""Tests for the packet-level simulation (repro.simulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solution import OverlaySolution
from repro.network.loss import GilbertElliottLossModel
from repro.simulation import (
    FailureEvent,
    FailureSchedule,
    SimulationConfig,
    StreamSession,
    post_reconstruction_loss,
    reconstruct,
    simulate_demand_paths,
    simulate_solution,
)
from repro.simulation.packets import loss_rate, window_loss_rates
from repro.simulation.reconstruction import duplicates_discarded


@pytest.fixture
def tiny_solution(tiny_problem):
    return OverlaySolution.from_assignments(
        tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1", "r3"]}
    )


class TestPackets:
    def test_session_validation(self):
        with pytest.raises(ValueError):
            StreamSession("s", 0)
        assert StreamSession("s", 10).num_packets == 10

    def test_loss_rate(self):
        assert loss_rate(np.array([True, True, False, False])) == pytest.approx(0.5)
        assert loss_rate(np.empty(0, dtype=bool)) == 1.0

    def test_window_loss_rates(self):
        received = np.array([True] * 10 + [False] * 10)
        rates = window_loss_rates(received, window=10)
        assert rates.tolist() == [0.0, 1.0]
        with pytest.raises(ValueError):
            window_loss_rates(received, window=0)


class TestReconstruction:
    def test_any_copy_suffices(self):
        copy_a = np.array([True, False, False, True])
        copy_b = np.array([False, True, False, True])
        received = reconstruct([copy_a, copy_b])
        assert received.tolist() == [True, True, False, True]
        assert post_reconstruction_loss([copy_a, copy_b]) == pytest.approx(0.25)

    def test_2d_array_input(self):
        stacked = np.array([[True, False], [False, False]])
        assert reconstruct(stacked).tolist() == [True, False]

    def test_empty_copies(self):
        assert reconstruct([]).size == 0
        assert post_reconstruction_loss([]) == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            reconstruct([np.array([True]), np.array([True, False])])

    def test_duplicates_discarded(self):
        copy_a = np.array([True, True, False])
        copy_b = np.array([True, False, False])
        assert duplicates_discarded([copy_a, copy_b]) == 1
        assert duplicates_discarded([]) == 0


class TestFailures:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent("weird", "x", 0, 10)
        with pytest.raises(ValueError):
            FailureEvent("isp_outage", "x", 10, 5)

    def test_window_mask(self):
        event = FailureEvent("reflector_crash", "r1", 2, 5)
        mask = event.window_mask(8)
        assert mask.tolist() == [False, False, True, True, True, False, False, False]

    def test_link_outage_mask_matches_targets(self):
        schedule = FailureSchedule(
            [
                FailureEvent("reflector_crash", "r1", 0, 5),
                FailureEvent("isp_outage", "ispA", 5, 10),
            ]
        )
        node_isp = {"r2": "ispA", "d": "ispB"}
        mask_r1 = schedule.link_outage_mask("r1", "d", 10)
        assert mask_r1[:5].all() and not mask_r1[5:].any()
        mask_r2 = schedule.link_outage_mask("r2", "d", 10, node_isp)
        assert mask_r2[5:].all() and not mask_r2[:5].any()
        mask_other = schedule.link_outage_mask("r3", "d", 10, node_isp)
        assert not mask_other.any()

    def test_single_isp_outage_helper(self):
        schedule = FailureSchedule.single_isp_outage("ispA", 1000, fraction=0.25)
        assert len(schedule) == 1
        event = schedule.events[0]
        assert event.end - event.start == 250
        with pytest.raises(ValueError):
            FailureSchedule.single_isp_outage("ispA", 100, fraction=0.0)


class TestTransportAndEngine:
    def test_simulated_loss_matches_analytic(self, tiny_problem, tiny_solution, rng):
        """Measured post-reconstruction loss ~ exact failure probability."""
        config = SimulationConfig(num_packets=40_000, seed=1)
        report = simulate_solution(tiny_problem, tiny_solution, config)
        for demand in tiny_problem.demands:
            analytic = tiny_solution.failure_probability(demand)
            measured = report.result_for(demand.key).loss_rate
            assert measured == pytest.approx(analytic, abs=0.004)

    def test_unserved_demand_loses_everything(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        report = simulate_solution(
            tiny_problem, solution, SimulationConfig(num_packets=500, seed=0)
        )
        assert report.result_for(("d2", "s")).loss_rate == 1.0
        assert not report.result_for(("d2", "s")).meets_threshold

    def test_more_paths_lower_loss(self, tiny_problem, rng):
        single = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r3"]})
        double = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r3", "r1"]})
        config = SimulationConfig(num_packets=20_000, seed=3)
        loss_single = simulate_solution(tiny_problem, single, config).result_for(("d1", "s")).loss_rate
        loss_double = simulate_solution(tiny_problem, double, config).result_for(("d1", "s")).loss_rate
        assert loss_double < loss_single

    def test_reflector_crash_increases_window_loss(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        schedule = FailureSchedule([FailureEvent("reflector_crash", "r1", 0, 2500)])
        config = SimulationConfig(num_packets=5000, window=500, failures=schedule, seed=0)
        report = simulate_solution(tiny_problem, solution, config)
        result = report.result_for(("d1", "s"))
        assert result.loss_rate > 0.45
        assert result.worst_window_loss == pytest.approx(1.0)

    def test_isp_outage_only_affects_that_isp(self, tiny_problem):
        node_isp = {"r1": "ispA", "r2": "ispB", "r3": "ispB"}
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1"]}
        )
        schedule = FailureSchedule([FailureEvent("isp_outage", "ispA", 0, 10_000)])
        config = SimulationConfig(num_packets=10_000, failures=schedule, seed=0)
        report = simulate_solution(tiny_problem, solution, config, node_isp=node_isp)
        # d1 still has r2 (ispB) -> low loss; d2 only had r1 (ispA) -> total loss.
        assert report.result_for(("d1", "s")).loss_rate < 0.2
        assert report.result_for(("d2", "s")).loss_rate == pytest.approx(1.0)

    def test_shared_first_hop_draw(self, tiny_problem):
        """Two sinks served by the same reflector share its source->reflector losses."""
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1"], ("d2", "s"): ["r1"]}
        )
        rng = np.random.default_rng(0)
        paths_d1 = simulate_demand_paths(
            tiny_problem, solution, tiny_problem.demands[0], 2000, rng
        )
        assert set(paths_d1) == {"r1"}

    def test_bursty_model_same_average(self, tiny_problem, tiny_solution):
        config = SimulationConfig(
            num_packets=40_000,
            loss_model=GilbertElliottLossModel(),
            seed=5,
        )
        report = simulate_solution(tiny_problem, tiny_solution, config)
        for demand in tiny_problem.demands:
            analytic = tiny_solution.failure_probability(demand)
            measured = report.result_for(demand.key).loss_rate
            # Bursty loss keeps roughly the same average (correlations shift it a bit).
            assert measured == pytest.approx(analytic, abs=0.02)

    def test_report_summary_and_aggregates(self, tiny_problem, tiny_solution):
        report = simulate_solution(
            tiny_problem, tiny_solution, SimulationConfig(num_packets=2000, seed=2)
        )
        summary = report.summary()
        assert summary["num_demands"] == 2
        assert 0.0 <= summary["mean_loss"] <= summary["max_loss"] <= 1.0
        assert 0.0 <= report.fraction_meeting_threshold <= 1.0
        with pytest.raises(KeyError):
            report.result_for(("missing", "s"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_packets=0)
        with pytest.raises(ValueError):
            SimulationConfig(window=0)
