"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import OverlayDesignProblem
from repro.workloads.random_instances import RandomInstanceConfig, random_problem


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


def build_tiny_problem() -> OverlayDesignProblem:
    """Hand-built 1-stream / 3-reflector / 2-sink instance with known numbers."""
    problem = OverlayDesignProblem(name="tiny")
    problem.add_stream("s")
    problem.add_reflector("r1", cost=10.0, fanout=3)
    problem.add_reflector("r2", cost=6.0, fanout=2)
    problem.add_reflector("r3", cost=4.0, fanout=2)
    problem.add_sink("d1")
    problem.add_sink("d2")
    problem.add_stream_edge("s", "r1", loss_probability=0.01, cost=1.0)
    problem.add_stream_edge("s", "r2", loss_probability=0.02, cost=0.8)
    problem.add_stream_edge("s", "r3", loss_probability=0.05, cost=0.5)
    problem.add_delivery_edge("r1", "d1", loss_probability=0.02, cost=0.6)
    problem.add_delivery_edge("r1", "d2", loss_probability=0.03, cost=0.7)
    problem.add_delivery_edge("r2", "d1", loss_probability=0.05, cost=0.4)
    problem.add_delivery_edge("r2", "d2", loss_probability=0.04, cost=0.4)
    problem.add_delivery_edge("r3", "d1", loss_probability=0.08, cost=0.2)
    problem.add_delivery_edge("r3", "d2", loss_probability=0.10, cost=0.2)
    problem.add_demand("d1", "s", success_threshold=0.995)
    problem.add_demand("d2", "s", success_threshold=0.99)
    return problem


@pytest.fixture
def tiny_problem() -> OverlayDesignProblem:
    return build_tiny_problem()


@pytest.fixture
def small_random_problem() -> OverlayDesignProblem:
    """A slightly larger random instance (deterministic seed)."""
    config = RandomInstanceConfig(
        num_streams=2, num_reflectors=6, num_sinks=8, demands_per_sink=1, num_colors=3
    )
    return random_problem(config, rng=7)


@pytest.fixture
def colored_problem() -> OverlayDesignProblem:
    """Instance where every reflector carries an ISP color."""
    config = RandomInstanceConfig(
        num_streams=1, num_reflectors=6, num_sinks=5, demands_per_sink=1, num_colors=2
    )
    return random_problem(config, rng=11)
