"""Shared fixtures for the test suite + hypothesis profiles.

Hypothesis profiles: ``ci`` is fully derandomized (example selection derives
from each test's source), so property failures reproduce exactly across runs
and machines; ``dev`` keeps random exploration for local runs.  CI loads the
``ci`` profile (the workflow exports ``HYPOTHESIS_PROFILE=ci``; a bare ``CI``
environment variable works too).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.problem import OverlayDesignProblem
from repro.workloads.random_instances import RandomInstanceConfig, random_problem
from repro.workloads.tiny import build_tiny_problem

__all__ = ["build_tiny_problem"]

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev")
)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden design fixtures under tests/goldens/ instead "
        "of comparing against them (commit the diff deliberately)",
    )


@pytest.fixture
def regen_goldens(request: pytest.FixtureRequest) -> bool:
    """True when the run should regenerate golden fixtures."""
    return bool(request.config.getoption("--regen-goldens"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_problem() -> OverlayDesignProblem:
    return build_tiny_problem()


@pytest.fixture
def small_random_problem() -> OverlayDesignProblem:
    """A slightly larger random instance (deterministic seed)."""
    config = RandomInstanceConfig(
        num_streams=2, num_reflectors=6, num_sinks=8, demands_per_sink=1, num_colors=3
    )
    return random_problem(config, rng=7)


@pytest.fixture
def colored_problem() -> OverlayDesignProblem:
    """Instance where every reflector carries an ISP color."""
    config = RandomInstanceConfig(
        num_streams=1, num_reflectors=6, num_sinks=5, demands_per_sink=1, num_colors=2
    )
    return random_problem(config, rng=11)
