"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import OverlayDesignProblem
from repro.workloads.random_instances import RandomInstanceConfig, random_problem
from repro.workloads.tiny import build_tiny_problem

__all__ = ["build_tiny_problem"]


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_problem() -> OverlayDesignProblem:
    return build_tiny_problem()


@pytest.fixture
def small_random_problem() -> OverlayDesignProblem:
    """A slightly larger random instance (deterministic seed)."""
    config = RandomInstanceConfig(
        num_streams=2, num_reflectors=6, num_sinks=8, demands_per_sink=1, num_colors=3
    )
    return random_problem(config, rng=7)


@pytest.fixture
def colored_problem() -> OverlayDesignProblem:
    """Instance where every reflector carries an ISP color."""
    config = RandomInstanceConfig(
        num_streams=1, num_reflectors=6, num_sinks=5, demands_per_sink=1, num_colors=2
    )
    return random_problem(config, rng=11)
