"""Unit tests for the incremental layer: delta model, impact rules, engine
options, and the lazy-partition / assignment-level stitch plumbing the engine
rides on.  The end-to-end quality gates live in
``tests/test_incremental_differential.py``; these tests pin the component
contracts directly."""

import pytest

from repro.core.problem import OverlayDesignProblem
from repro.core.serialization import problem_digest
from repro.incremental import (
    ProblemDelta,
    SinkAttachment,
    affected_demand_keys,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
    design_incremental,
    diff_problems,
    invert_delta,
)
from repro.incremental.delta import DeliveryEdgeSpec, StreamEdgeSpec
from repro.scale import build_partition, stitch_assignments, stitch_solutions
from repro.api import DesignRequest, get_designer


def small_problem(name="inc-unit") -> OverlayDesignProblem:
    problem = OverlayDesignProblem(name=name)
    problem.add_stream("s1")
    problem.add_stream("s2")
    for index in range(4):
        reflector = f"r{index}"
        problem.add_reflector(reflector, cost=5.0 + index, fanout=4)
        problem.add_stream_edge("s1", reflector, loss_probability=0.01, cost=1.0)
        problem.add_stream_edge("s2", reflector, loss_probability=0.02, cost=1.0)
    for index in range(6):
        sink = f"sink{index}"
        problem.add_sink(sink)
        for r_index in range(4):
            problem.add_delivery_edge(
                f"r{r_index}",
                sink,
                loss_probability=0.02 + 0.01 * ((index + r_index) % 3),
                cost=0.5 + 0.1 * r_index,
            )
        problem.add_demand(sink, "s1", success_threshold=0.9)
        if index % 2 == 0:
            problem.add_demand(sink, "s2", success_threshold=0.85)
    return problem


def churned(problem: OverlayDesignProblem) -> OverlayDesignProblem:
    """A hand-built churn: sink5 leaves, sink6 joins, one edge drifts."""
    rebuilt = OverlayDesignProblem(name=problem.name)
    for stream in problem.streams:
        rebuilt.add_stream(stream, bandwidth=problem.stream_bandwidth(stream))
    for reflector in problem.reflectors:
        info = problem.reflector_info(reflector)
        rebuilt.add_reflector(
            reflector, cost=info.cost, fanout=info.fanout, color=info.color,
        )
    for edge in problem.stream_edges():
        rebuilt.add_stream_edge(
            edge.stream, edge.reflector, edge.loss_probability, edge.cost,
        )
    for sink in problem.sinks:
        if sink == "sink5":
            continue
        rebuilt.add_sink(sink)
    rebuilt.add_sink("sink6")
    for reflector, sink, loss, cost in problem.delivery_link_data():
        if sink == "sink5":
            continue
        if (reflector, sink) == ("r0", "sink0"):
            loss = 0.2  # measured drift
        rebuilt.add_delivery_edge(reflector, sink, loss_probability=loss, cost=cost)
    rebuilt.add_delivery_edge("r1", "sink6", loss_probability=0.03, cost=0.6)
    rebuilt.add_delivery_edge("r2", "sink6", loss_probability=0.04, cost=0.7)
    for demand in problem.demands:
        if demand.sink == "sink5":
            continue
        rebuilt.add_demand(
            demand.sink, demand.stream, success_threshold=demand.success_threshold,
        )
    rebuilt.add_demand("sink6", "s1", success_threshold=0.9)
    return rebuilt


class TestDeltaModel:
    def test_diff_classifies_each_change_kind(self):
        old = small_problem()
        new = churned(old)
        delta = diff_problems(old, new)
        assert set(delta.sinks_added) == {"sink6"}
        assert set(delta.sinks_removed) == {"sink5"}
        assert ("r0", "sink0") in delta.delivery_changed
        assert not delta.stream_edges_changed
        assert not delta.structural
        # The removed sink's attachment is self-contained.
        attachment = delta.sinks_removed["sink5"]
        assert isinstance(attachment, SinkAttachment)
        assert {reflector for reflector, _spec in attachment.delivery} == {
            "r0",
            "r1",
            "r2",
            "r3",
        }
        assert attachment.demands == (("s1", 0.9),)

    def test_apply_then_invert_round_trips(self):
        old = small_problem()
        new = churned(old)
        delta = diff_problems(old, new)
        applied = apply_delta(old, delta)
        assert problem_digest(applied) == problem_digest(new)
        restored = apply_delta(applied, invert_delta(delta))
        assert problem_digest(restored) == problem_digest(old)

    def test_serde_round_trip(self):
        delta = diff_problems(small_problem(), churned(small_problem()))
        document = delta_to_dict(delta)
        decoded = delta_from_dict(document)
        assert decoded == delta
        assert delta_to_dict(decoded) == document

    def test_structural_delta_refuses_apply(self):
        old = small_problem()
        new = small_problem()
        new.add_reflector("r-extra", cost=1.0, fanout=2)
        delta = diff_problems(old, new)
        assert delta.requires_full_redesign
        assert any("reflector added" in reason for reason in delta.structural)
        with pytest.raises(ValueError, match="structural"):
            apply_delta(old, delta)

    def test_stale_delta_refuses_apply(self):
        delta = ProblemDelta(
            delivery_changed={
                ("r0", "sink0"): (
                    DeliveryEdgeSpec(loss_probability=0.5, cost=9.9),
                    DeliveryEdgeSpec(loss_probability=0.1, cost=1.0),
                )
            }
        )
        with pytest.raises(ValueError, match="stale delta"):
            apply_delta(small_problem(), delta)

    def test_add_existing_sink_refuses_apply(self):
        delta = ProblemDelta(sinks_added={"sink0": SinkAttachment()})
        with pytest.raises(ValueError, match="already exists"):
            apply_delta(small_problem(), delta)


class TestAffectedDemands:
    def test_added_sink_affects_all_its_demands(self):
        new = churned(small_problem())
        delta = ProblemDelta(sinks_added={"sink6": SinkAttachment()})
        assert affected_demand_keys(delta, new) == {("sink6", "s1")}

    def test_removed_sink_affects_nothing(self):
        new = churned(small_problem())
        delta = ProblemDelta(sinks_removed={"sink5": SinkAttachment()})
        assert affected_demand_keys(delta, new) == frozenset()

    def test_delivery_change_affects_the_sinks_demands(self):
        new = small_problem()
        delta = ProblemDelta(delivery_changed={("r0", "sink0"): (None, None)})
        assert affected_demand_keys(delta, new) == {
            ("sink0", "s1"),
            ("sink0", "s2"),
        }

    def test_stream_edge_change_affects_reachable_demands_of_that_stream(self):
        new = small_problem()
        delta = ProblemDelta(
            stream_edges_changed={
                ("s2", "r1"): (
                    StreamEdgeSpec(0.02, 1.0),
                    StreamEdgeSpec(0.03, 1.0),
                )
            }
        )
        affected = affected_demand_keys(delta, new)
        # Every sink has an edge from r1, but only the even sinks demand s2.
        assert affected == {(f"sink{i}", "s2") for i in (0, 2, 4)}

    def test_demand_change_affects_only_that_demand(self):
        new = small_problem()
        delta = ProblemDelta(demands_changed={("sink3", "s1"): (0.9, 0.95)})
        assert affected_demand_keys(delta, new) == {("sink3", "s1")}


class TestEngineOptions:
    def test_unknown_option_rejected(self):
        problem = small_problem()
        standing = get_designer("sharded:greedy").design(
            DesignRequest(problem=problem, options={"shards": 2})
        )
        with pytest.raises(ValueError, match="unknown option"):
            design_incremental(standing, problem, options={"bogus": 1})

    def test_bad_resolve_rejected(self):
        problem = small_problem()
        standing = get_designer("sharded:greedy").design(
            DesignRequest(problem=problem, options={"shards": 2})
        )
        with pytest.raises(ValueError, match="resolve"):
            design_incremental(standing, problem, options={"resolve": "half"})

    def test_bound_only_inner_rejected(self):
        problem = small_problem()
        standing = get_designer("sharded:greedy").design(
            DesignRequest(problem=problem, options={"shards": 2})
        )
        with pytest.raises(ValueError, match="bound only"):
            design_incremental(standing, problem, strategy="lp-bound")

    def test_structural_delta_falls_back(self):
        problem = small_problem()
        standing = get_designer("sharded:greedy").design(
            DesignRequest(problem=problem, options={"shards": 2})
        )
        new = small_problem()
        new.add_reflector("r-extra", cost=1.0, fanout=2)
        new.add_stream_edge("s1", "r-extra", loss_probability=0.01, cost=1.0)
        result = design_incremental(
            standing, new, previous_problem=problem, options={"shards": 2},
        )
        assert result.metadata["incremental_fallback"] == "structural-delta"
        assert result.strategy == "incremental:greedy"

    def test_dirty_fraction_falls_back(self):
        problem = small_problem()
        standing = get_designer("sharded:greedy").design(
            DesignRequest(problem=problem, options={"shards": 2})
        )
        new = churned(problem)
        result = design_incremental(
            standing,
            new,
            previous_problem=problem,
            options={"shards": 2, "full_redesign_threshold": 0.0},
        )
        assert result.metadata["incremental_fallback"] == "dirty-fraction"


class TestLazyPartition:
    def test_lazy_plan_matches_eager_plan(self):
        problem = small_problem()
        eager = build_partition(problem, shards=3)
        lazy = build_partition(problem, shards=3, materialize=False)
        assert [s.shard_id for s in lazy.shards] == [s.shard_id for s in eager.shards]
        for lazy_shard, eager_shard in zip(lazy.shards, eager.shards):
            assert lazy_shard.sinks == eager_shard.sinks
            assert lazy_shard.demand_keys == eager_shard.demand_keys
            # Materializing on first access yields the identical subproblem.
            assert problem_digest(lazy_shard.problem) == problem_digest(eager_shard.problem)

    def test_shard_requires_problem_or_factory(self):
        from repro.scale import Shard

        with pytest.raises(ValueError, match="problem"):
            Shard(shard_id="s", sinks=[], demand_keys=[])


class TestStitchAssignments:
    def test_matches_solution_level_stitch(self):
        problem = small_problem()
        plan = build_partition(problem, shards=3)
        designer = get_designer("greedy")
        solutions = [
            designer.design(DesignRequest(problem=shard.problem)).solution
            for shard in plan.shards
        ]
        merged_a, report_a = stitch_solutions(problem, plan, solutions)
        merged_b, report_b = stitch_assignments(
            problem, plan, [dict(s.assignments) for s in solutions]
        )
        assert merged_a.assignments == merged_b.assignments
        assert merged_a.total_cost() == merged_b.total_cost()
        assert report_a.as_metadata() == report_b.as_metadata()

    def test_wrong_shard_count_rejected(self):
        problem = small_problem()
        plan = build_partition(problem, shards=3)
        with pytest.raises(ValueError, match="shard"):
            stitch_assignments(problem, plan, [{}])
