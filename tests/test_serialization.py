"""Tests for JSON (de)serialization (repro.core.serialization)."""

from __future__ import annotations

import json

import pytest

from repro.core.serialization import (
    FORMAT_VERSION,
    dump_problem,
    dump_solution,
    load_problem,
    load_solution,
    problem_from_dict,
    problem_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.core.solution import OverlaySolution
from repro.workloads import RandomInstanceConfig, random_problem


class TestProblemRoundtrip:
    def test_roundtrip_preserves_structure(self, tiny_problem):
        data = problem_to_dict(tiny_problem)
        restored = problem_from_dict(data)
        assert restored.streams == tiny_problem.streams
        assert restored.reflectors == tiny_problem.reflectors
        assert restored.sinks == tiny_problem.sinks
        assert restored.demands == tiny_problem.demands
        for edge in tiny_problem.stream_edges():
            other = restored.stream_edge(edge.stream, edge.reflector)
            assert other.loss_probability == pytest.approx(edge.loss_probability)
            assert other.cost == pytest.approx(edge.cost)
        for reflector, sink in tiny_problem.delivery_links():
            assert restored.delivery_loss(reflector, sink) == pytest.approx(
                tiny_problem.delivery_loss(reflector, sink)
            )
            assert restored.delivery_cost(reflector, sink, "s") == pytest.approx(
                tiny_problem.delivery_cost(reflector, sink, "s")
            )

    def test_roundtrip_preserves_colors_capacities_bandwidth(self, colored_problem):
        restored = problem_from_dict(problem_to_dict(colored_problem))
        for reflector in colored_problem.reflectors:
            assert restored.color(reflector) == colored_problem.color(reflector)
        for stream in colored_problem.streams:
            assert restored.stream_bandwidth(stream) == pytest.approx(
                colored_problem.stream_bandwidth(stream)
            )

    def test_document_is_json_serializable(self, small_random_problem):
        text = json.dumps(problem_to_dict(small_random_problem))
        restored = problem_from_dict(json.loads(text))
        assert restored.num_demands == small_random_problem.num_demands

    def test_file_roundtrip(self, tmp_path, tiny_problem):
        path = tmp_path / "problem.json"
        dump_problem(tiny_problem, str(path))
        restored = load_problem(str(path))
        assert restored.num_demands == tiny_problem.num_demands

    def test_rejects_wrong_kind_and_version(self, tiny_problem):
        data = problem_to_dict(tiny_problem)
        with pytest.raises(ValueError):
            problem_from_dict({**data, "kind": "something-else"})
        with pytest.raises(ValueError):
            problem_from_dict({**data, "format_version": FORMAT_VERSION + 1})
        with pytest.raises(ValueError):
            problem_from_dict("not a dict")  # type: ignore[arg-type]

    def test_designing_restored_problem_gives_same_lp_bound(self):
        from repro.core.algorithm import fractional_lower_bound

        problem = random_problem(RandomInstanceConfig(num_reflectors=5, num_sinks=6), rng=0)
        restored = problem_from_dict(problem_to_dict(problem))
        assert fractional_lower_bound(restored) == pytest.approx(
            fractional_lower_bound(problem), rel=1e-6
        )


class TestSolutionRoundtrip:
    def test_roundtrip(self, tiny_problem, tmp_path):
        solution = OverlaySolution.from_assignments(
            tiny_problem,
            {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r3"]},
            metadata={"algorithm": "manual", "multiplier": 3.5},
        )
        data = solution_to_dict(solution)
        restored = solution_from_dict(data, tiny_problem)
        assert restored.assignments == solution.assignments
        assert restored.built_reflectors == solution.built_reflectors
        assert restored.total_cost() == pytest.approx(solution.total_cost())
        assert restored.metadata["algorithm"] == "manual"

        path = tmp_path / "solution.json"
        dump_solution(solution, str(path))
        from_file = load_solution(str(path), tiny_problem)
        assert from_file.assignments == solution.assignments

    def test_summary_embedded(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        data = solution_to_dict(solution)
        assert data["summary"]["assignments"] == 1

    def test_rejects_wrong_kind(self, tiny_problem):
        with pytest.raises(ValueError):
            solution_from_dict({"kind": "overlay-design-problem", "format_version": 1}, tiny_problem)
