"""The documentation must stay executable and truthful.

* The quickstart in ``repro/__init__`` and ``README.md`` runs verbatim.
* Every ``repro.*`` module named in ``docs/paper_map.md`` imports, and every
  backtick-quoted symbol listed alongside it actually exists there.
"""

from __future__ import annotations

import doctest
import importlib
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_package_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


@pytest.mark.skipif(not (REPO_ROOT / "README.md").exists(), reason="no README")
def test_readme_quickstart_doctest():
    results = doctest.testfile(str(REPO_ROOT / "README.md"), module_relative=False)
    assert results.attempted > 0
    assert results.failed == 0


def _paper_map_references() -> list[tuple[str, list[str]]]:
    """Parse ``docs/paper_map.md`` into (module, [symbols]) pairs.

    The map writes references as ```repro.mod.ule`` — ``SymbolA``, ``SymbolB``
    ``; symbols quoted elsewhere in the row (prose) are not attributed to the
    module, which keeps the check strict but not brittle.
    """
    text = (REPO_ROOT / "docs" / "paper_map.md").read_text()
    references = []
    for match in re.finditer(r"`(repro(?:\.\w+)*)` — ((?:`[^`]+`(?:, )?)+)", text):
        module = match.group(1)
        symbols = [
            symbol.split("(")[0]
            for symbol in re.findall(r"`(\w+)", match.group(2))
        ]
        references.append((module, symbols))
    # Bare module mentions (no symbol list) must import too.
    for match in re.finditer(r"`(repro(?:\.\w+)+)`", text):
        references.append((match.group(1), []))
    return references


def test_paper_map_modules_and_symbols_exist():
    references = _paper_map_references()
    assert len(references) > 30, "paper map should reference many modules"
    missing = []
    for module_name, symbols in references:
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            missing.append(module_name)
            continue
        for symbol in symbols:
            if not hasattr(module, symbol):
                missing.append(f"{module_name}.{symbol}")
    assert not missing, f"paper map references nonexistent code: {missing}"


def test_paper_map_benchmarks_exist():
    text = (REPO_ROOT / "docs" / "paper_map.md").read_text()
    for path in re.findall(r"`(benchmarks/\w+\.py)`", text):
        assert (REPO_ROOT / path).exists(), f"paper map names missing file {path}"
    for path in re.findall(r"`(tests/\w+\.py)`", text):
        assert (REPO_ROOT / path).exists(), f"paper map names missing file {path}"
