"""Tests for the scipy-backed LP solver (repro.lp.solver)."""

from __future__ import annotations

import pytest

from repro.lp import LinearExpr, LinearProgram, LPStatus, Objective, solve_lp


class TestSolveBasics:
    def test_simple_minimization(self):
        model = LinearProgram()
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint(x + y >= 2.0)
        model.set_objective(3 * x + y)
        solution = solve_lp(model)
        assert solution.is_optimal
        # Cheapest way to reach 2 units is all y.
        assert solution.value(y) == pytest.approx(2.0, abs=1e-6)
        assert solution.value(x) == pytest.approx(0.0, abs=1e-6)
        assert solution.objective == pytest.approx(2.0, abs=1e-6)

    def test_simple_maximization(self):
        model = LinearProgram(objective_sense=Objective.MAXIMIZE)
        x = model.add_variable("x", upper=4.0)
        y = model.add_variable("y", upper=3.0)
        model.add_constraint(x + y <= 5.0)
        model.set_objective(x + 2 * y)
        solution = solve_lp(model)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(8.0, abs=1e-6)
        assert solution.value(y) == pytest.approx(3.0, abs=1e-6)

    def test_equality_constraints(self):
        model = LinearProgram()
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint((x + y).equals(1.0))
        model.set_objective(x + 2 * y)
        solution = solve_lp(model)
        assert solution.is_optimal
        assert solution.value(x) == pytest.approx(1.0, abs=1e-6)

    def test_objective_constant_carried_through(self):
        model = LinearProgram()
        x = model.add_variable("x", lower=1.0)
        model.set_objective(x + 100.0)
        solution = solve_lp(model)
        assert solution.objective == pytest.approx(101.0, abs=1e-6)

    def test_empty_model(self):
        solution = solve_lp(LinearProgram())
        assert solution.is_optimal
        assert solution.objective == 0.0

    def test_value_map_helper(self):
        model = LinearProgram()
        variables = {("a", 1): model.add_variable("v1"), ("b", 2): model.add_variable("v2")}
        model.add_constraint(variables[("a", 1)] >= 1.5)
        model.set_objective(LinearExpr.sum(variables.values()))
        solution = solve_lp(model)
        mapping = solution.value_map(variables)
        assert mapping[("a", 1)] == pytest.approx(1.5, abs=1e-6)
        assert mapping[("b", 2)] == pytest.approx(0.0, abs=1e-6)


class TestSolveFailures:
    def test_infeasible(self):
        model = LinearProgram()
        x = model.add_variable("x", upper=1.0)
        model.add_constraint(x >= 2.0)
        model.set_objective(x + 0.0)
        solution = solve_lp(model)
        assert solution.status is LPStatus.INFEASIBLE
        assert not solution.is_optimal

    def test_unbounded(self):
        model = LinearProgram(objective_sense=Objective.MAXIMIZE)
        x = model.add_variable("x")
        model.set_objective(x + 0.0)
        solution = solve_lp(model)
        assert solution.status in (LPStatus.UNBOUNDED, LPStatus.INFEASIBLE)
        assert not solution.is_optimal


class TestAgainstKnownOptima:
    def test_transportation_problem(self):
        """2 plants x 3 markets transportation LP with a hand-checked optimum."""
        supply = {"p1": 20.0, "p2": 30.0}
        demand = {"m1": 10.0, "m2": 25.0, "m3": 15.0}
        cost = {
            ("p1", "m1"): 2.0,
            ("p1", "m2"): 4.0,
            ("p1", "m3"): 5.0,
            ("p2", "m1"): 3.0,
            ("p2", "m2"): 1.0,
            ("p2", "m3"): 7.0,
        }
        model = LinearProgram()
        ship = {key: model.add_variable(f"ship[{key}]") for key in cost}
        for plant, cap in supply.items():
            model.add_constraint(
                LinearExpr.sum(ship[key] for key in cost if key[0] == plant) <= cap
            )
        for market, need in demand.items():
            model.add_constraint(
                LinearExpr.sum(ship[key] for key in cost if key[1] == market) >= need
            )
        model.set_objective(
            LinearExpr.weighted_sum((cost[key], ship[key]) for key in cost)
        )
        solution = solve_lp(model)
        assert solution.is_optimal
        # Optimal plan: p1->m1 5, p1->m3 15, p2->m1 5, p2->m2 25 (cost 125);
        # keeping the expensive p2->m3 lane empty is what makes it optimal.
        expected = 5 * 2.0 + 15 * 5.0 + 5 * 3.0 + 25 * 1.0
        assert solution.objective == pytest.approx(expected, abs=1e-6)
