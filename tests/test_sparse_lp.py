"""Tests for the vectorized sparse LP path (repro.lp.sparse + sparse formulation).

The contract under test: the sparse path builds *the same relaxation* as the
expression-tree path for every constraint family and every Section-6
extension, reaching the same optimal objective, while reporting honest
assembly statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import DesignParameters, design_overlay, fractional_lower_bound
from repro.core.formulation import (
    ExtensionOptions,
    build_formulation,
    build_sparse_formulation,
)
from repro.core.problem import OverlayDesignProblem
from repro.lp import LPStatus, Objective, Sense, SparseLPBuilder, VariableArena, solve_compiled
from repro.workloads.tiny import build_tiny_problem


class TestVariableArena:
    def test_blocks_hand_out_contiguous_indices(self):
        arena = VariableArena()
        a = arena.add_block(3, name="a")
        b = arena.add_block(2, lower=1.0, upper=np.inf, name="b")
        assert a.tolist() == [0, 1, 2]
        assert b.tolist() == [3, 4]
        assert arena.size == 5
        bounds = arena.bounds_array()
        assert bounds.shape == (5, 2)
        assert bounds[0].tolist() == [0.0, 1.0]
        assert bounds[3, 0] == 1.0 and np.isinf(bounds[3, 1])

    def test_bad_bounds_rejected(self):
        arena = VariableArena()
        with pytest.raises(ValueError):
            arena.add_block(2, lower=1.0, upper=0.0)
        with pytest.raises(ValueError):
            arena.add_block(-1)


class TestSparseLPBuilder:
    def build_small(self):
        # min x0 + 2 x1  s.t.  x0 + x1 >= 1,  x1 <= 0.4
        builder = SparseLPBuilder(name="small")
        x = builder.add_variables(2, 0.0, 1.0, name="x")
        builder.add_objective_terms(x, np.array([1.0, 2.0]))
        builder.add_block("cover", [0, 0], x, [1.0, 1.0], [1.0], Sense.GE)
        builder.add_block("cap", [0], x[1:], [1.0], [0.4], Sense.LE)
        return builder

    def test_build_and_solve(self):
        compiled, stats = self.build_small().build()
        assert stats.num_variables == 2
        assert stats.num_inequality_rows == 2
        assert stats.num_equality_rows == 0
        assert stats.num_nonzeros == 3
        assert [b.name for b in stats.blocks] == ["cover", "cap"]
        assert stats.build_seconds >= stats.compile_seconds >= 0.0
        solution = solve_compiled(compiled)
        assert solution.status is LPStatus.OPTIMAL
        # Optimum puts all mass on the cheap variable: x = (1, 0).
        assert solution.objective == pytest.approx(1.0)
        assert solution.values.tolist() == pytest.approx([1.0, 0.0])

    def test_ge_blocks_are_negated_into_ub_form(self):
        compiled, _ = self.build_small().build()
        # Row 0 is the GE block: stored as -x0 - x1 <= -1.
        dense = compiled.A_ub.toarray()
        assert dense[0].tolist() == [-1.0, -1.0]
        assert compiled.b_ub[0] == -1.0

    def test_equality_blocks_go_to_a_eq(self):
        builder = SparseLPBuilder(name="eq")
        x = builder.add_variables(2, 0.0, np.inf)
        builder.add_objective_terms(x, np.array([1.0, 1.0]))
        builder.add_block("sum", [0, 0], x, [1.0, 1.0], [3.0], Sense.EQ)
        compiled, stats = builder.build()
        assert stats.num_equality_rows == 1 and stats.num_inequality_rows == 0
        solution = solve_compiled(compiled)
        assert solution.objective == pytest.approx(3.0)

    def test_maximization_sign_flip(self):
        builder = SparseLPBuilder(name="max", objective_sense=Objective.MAXIMIZE)
        x = builder.add_variables(1, 0.0, 2.0)
        builder.add_objective_terms(x, np.array([3.0]))
        compiled, _ = builder.build()
        solution = solve_compiled(compiled)
        assert solution.objective == pytest.approx(6.0)

    def test_duplicate_objective_terms_accumulate(self):
        builder = SparseLPBuilder()
        x = builder.add_variables(1, 0.0, 1.0)
        builder.add_objective_terms(np.array([0, 0]), np.array([1.0, 2.0]))
        compiled, _ = builder.build()
        assert compiled.c.tolist() == [3.0]

    def test_mismatched_arrays_rejected(self):
        builder = SparseLPBuilder()
        x = builder.add_variables(2)
        with pytest.raises(ValueError):
            builder.add_objective_terms(x, np.array([1.0]))
        with pytest.raises(ValueError):
            builder.add_block("bad", [0], x, [1.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            builder.add_block("bad rows", [5], x[:1], [1.0], [1.0])
        with pytest.raises(ValueError):
            builder.add_block("bad cols", [0], [99], [1.0], [1.0])

    def test_empty_block_is_ignored(self):
        builder = SparseLPBuilder()
        builder.add_variables(1)
        builder.add_block("empty", [], [], [], [])
        compiled, stats = builder.build()
        assert compiled.A_ub is None
        assert stats.num_constraints == 0


def _parity_case(problem: OverlayDesignProblem, options: ExtensionOptions | None = None):
    expr = build_formulation(problem, options)
    sparse = build_sparse_formulation(problem, options)
    return expr, sparse


class TestFormulationParity:
    """Sparse and expression-tree builders must describe the same LP."""

    @pytest.fixture
    def tiny(self):
        return build_tiny_problem()

    def test_same_shape_and_support(self, tiny):
        expr, sparse = _parity_case(tiny)
        assert sparse.num_variables == expr.num_variables
        assert sparse.num_constraints == expr.num_constraints
        assert sparse.z_keys == list(expr.z_vars)
        assert sparse.y_keys == list(expr.y_vars)
        assert sparse.x_keys == list(expr.x_vars)

    def test_same_weights_and_demand_weights(self, tiny):
        expr, sparse = _parity_case(tiny)
        for key, weight in expr.weights.items():
            assert sparse.weights[key] == pytest.approx(weight, abs=1e-12)
        for key, weight in expr.demand_weights.items():
            assert sparse.demand_weights[key] == pytest.approx(weight, abs=1e-12)

    def test_same_objective_on_tiny(self, tiny):
        expr, sparse = _parity_case(tiny)
        obj_expr = expr.solve().objective
        obj_sparse = sparse.solve().objective
        assert obj_sparse == pytest.approx(obj_expr, abs=1e-9)

    def test_same_fractional_solution_support(self, tiny):
        expr, sparse = _parity_case(tiny)
        frac_expr = expr.fractional_solution(expr.solve())
        frac_sparse = sparse.fractional_solution(sparse.solve())
        for key in frac_expr.x:
            assert frac_sparse.x[key] == pytest.approx(frac_expr.x[key], abs=1e-6)
        for key in frac_expr.z:
            assert frac_sparse.z[key] == pytest.approx(frac_expr.z[key], abs=1e-6)

    @pytest.mark.parametrize(
        "options",
        [
            ExtensionOptions(drop_cutting_plane=True),
            ExtensionOptions(use_bandwidth=True),
            ExtensionOptions(use_reflector_capacities=True),
            ExtensionOptions(use_arc_capacities=True),
            ExtensionOptions(use_color_constraints=True),
            ExtensionOptions(
                use_bandwidth=True,
                use_reflector_capacities=True,
                use_arc_capacities=True,
                use_color_constraints=True,
            ),
        ],
        ids=["no-cut", "bandwidth", "refl-cap", "arc-cap", "colors", "all"],
    )
    def test_extension_parity_on_random_instance(self, small_random_problem, options):
        expr, sparse = _parity_case(small_random_problem, options)
        assert sparse.num_variables == expr.num_variables
        assert sparse.num_constraints == expr.num_constraints
        obj_expr = expr.solve().objective
        obj_sparse = sparse.solve().objective
        assert obj_sparse == pytest.approx(obj_expr, abs=1e-9)

    def test_capacity_constraints_parity_on_capacitated_instance(self):
        problem = OverlayDesignProblem(name="capacitated")
        problem.add_stream("a")
        problem.add_stream("b")
        problem.add_reflector("r1", cost=2.0, fanout=5, capacity=1)
        problem.add_reflector("r2", cost=3.0, fanout=5)
        problem.add_sink("d")
        for stream in ("a", "b"):
            problem.add_stream_edge(stream, "r1", 0.01, 1.0)
            problem.add_stream_edge(stream, "r2", 0.01, 1.2)
        problem.add_delivery_edge("r1", "d", 0.02, 0.5, capacity=1.0)
        problem.add_delivery_edge("r2", "d", 0.02, 0.6, stream_costs={"b": 0.9})
        problem.add_demand("d", "a", 0.99)
        problem.add_demand("d", "b", 0.99)
        options = ExtensionOptions(use_reflector_capacities=True, use_arc_capacities=True)
        expr, sparse = _parity_case(problem, options)
        assert sparse.num_constraints == expr.num_constraints
        assert sparse.solve().objective == pytest.approx(expr.solve().objective, abs=1e-9)

    def test_stream_cost_overrides_in_objective(self):
        problem = OverlayDesignProblem()
        problem.add_stream("hd")
        problem.add_stream("sd")
        problem.add_reflector("r", cost=1.0, fanout=4)
        problem.add_sink("d")
        problem.add_stream_edge("hd", "r", 0.01, 1.0)
        problem.add_stream_edge("sd", "r", 0.01, 1.0)
        problem.add_delivery_edge("r", "d", 0.05, cost=1.0, stream_costs={"hd": 3.0})
        problem.add_demand("d", "hd", 0.9)
        problem.add_demand("d", "sd", 0.9)
        _, sparse = _parity_case(problem)
        hd_index = len(sparse.z_keys) + len(sparse.y_keys) + sparse.x_keys.index(
            ("r", ("d", "hd"))
        )
        sd_index = len(sparse.z_keys) + len(sparse.y_keys) + sparse.x_keys.index(
            ("r", ("d", "sd"))
        )
        assert sparse.compiled.c[hd_index] == pytest.approx(3.0)
        assert sparse.compiled.c[sd_index] == pytest.approx(1.0)

    def test_invalid_problem_rejected(self):
        with pytest.raises(ValueError):
            build_sparse_formulation(OverlayDesignProblem())

    def test_infeasible_extraction_raises(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=1)
        problem.add_sink("d")
        problem.add_stream_edge("s", "r", 0.4, 1.0)
        problem.add_delivery_edge("r", "d", 0.4, 1.0)
        problem.add_demand("d", "s", success_threshold=0.9999)
        sparse = build_sparse_formulation(problem)
        lp_solution = sparse.solve()
        assert not lp_solution.is_optimal
        with pytest.raises(ValueError):
            sparse.fractional_solution(lp_solution)


class TestPipelineIntegration:
    def test_design_overlay_backends_agree_on_lower_bound(self, small_random_problem):
        sparse_report = design_overlay(
            small_random_problem, DesignParameters(seed=3, lp_backend="sparse")
        )
        expr_report = design_overlay(
            small_random_problem, DesignParameters(seed=3, lp_backend="expr")
        )
        assert sparse_report.lp_lower_bound == pytest.approx(
            expr_report.lp_lower_bound, abs=1e-9
        )
        assert sparse_report.formulation_size == expr_report.formulation_size

    def test_sparse_backend_reports_build_stats(self, tiny_problem):
        report = design_overlay(tiny_problem, DesignParameters(seed=0))
        assert report.lp_build_stats is not None
        assert report.lp_build_stats.backend == "sparse"
        assert report.lp_build_stats.num_variables == report.formulation_size[0]
        assert report.lp_build_stats.num_constraints == report.formulation_size[1]
        assert report.lp_build_stats.num_nonzeros > 0

    def test_expr_backend_has_no_build_stats(self, tiny_problem):
        report = design_overlay(tiny_problem, DesignParameters(seed=0, lp_backend="expr"))
        assert report.lp_build_stats is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DesignParameters(lp_backend="magic")

    def test_fractional_lower_bound_backends_agree(self, tiny_problem):
        sparse_bound = fractional_lower_bound(tiny_problem, lp_backend="sparse")
        expr_bound = fractional_lower_bound(tiny_problem, lp_backend="expr")
        assert sparse_bound == pytest.approx(expr_bound, abs=1e-9)
