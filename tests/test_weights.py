"""Tests for the probability <-> weight transforms (repro.core.weights)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import weights as w


class TestPathFailureProbability:
    def test_serial_rule_matches_paper_formula(self):
        assert w.path_failure_probability(0.1, 0.2) == pytest.approx(0.1 + 0.2 - 0.02)

    def test_zero_loss_links_give_zero(self):
        assert w.path_failure_probability(0.0, 0.0) == 0.0

    def test_certain_loss_dominates(self):
        assert w.path_failure_probability(1.0, 0.3) == pytest.approx(1.0)

    def test_symmetric_in_arguments(self):
        assert w.path_failure_probability(0.07, 0.4) == pytest.approx(
            w.path_failure_probability(0.4, 0.07)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            w.path_failure_probability(-0.1, 0.5)
        with pytest.raises(ValueError):
            w.path_failure_probability(0.5, 1.5)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_equals_complement_of_joint_survival(self, p1, p2):
        combined = w.path_failure_probability(p1, p2)
        assert combined == pytest.approx(1.0 - (1.0 - p1) * (1.0 - p2), abs=1e-12)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_at_least_each_individual_loss(self, p1, p2):
        combined = w.path_failure_probability(p1, p2)
        assert combined >= max(p1, p2) - 1e-12


class TestCombinedFailureProbability:
    def test_parallel_rule_is_product(self):
        assert w.combined_failure_probability([0.1, 0.2, 0.5]) == pytest.approx(0.01)

    def test_empty_means_certain_failure(self):
        assert w.combined_failure_probability([]) == 1.0

    def test_single_path_is_identity(self):
        assert w.combined_failure_probability([0.37]) == pytest.approx(0.37)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6))
    def test_adding_paths_never_hurts(self, failures):
        with_extra = w.combined_failure_probability(failures + [0.5])
        without = w.combined_failure_probability(failures)
        assert with_extra <= without + 1e-12


class TestWeightTransforms:
    def test_failure_to_weight_basic(self):
        assert w.failure_to_weight(math.exp(-3)) == pytest.approx(3.0)

    def test_weight_to_failure_roundtrip(self):
        for q in (0.9, 0.5, 0.01, 1e-6):
            assert w.weight_to_failure(w.failure_to_weight(q)) == pytest.approx(q, rel=1e-9)

    def test_zero_failure_is_capped(self):
        assert w.failure_to_weight(0.0) == w.MAX_WEIGHT
        assert w.failure_to_weight(0.0, cap=5.0) == 5.0

    def test_threshold_to_weight(self):
        assert w.threshold_to_weight(0.0) == 0.0
        assert w.threshold_to_weight(1.0 - math.exp(-2)) == pytest.approx(2.0)

    def test_threshold_one_is_capped(self):
        assert w.threshold_to_weight(1.0) == w.MAX_WEIGHT

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            w.threshold_to_weight(1.5)
        with pytest.raises(ValueError):
            w.threshold_to_weight(-0.1)

    def test_success_from_weight_inverse_of_threshold(self):
        for phi in (0.5, 0.9, 0.999):
            assert w.success_from_weight(w.threshold_to_weight(phi)) == pytest.approx(phi)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            w.weight_to_failure(-1.0)
        with pytest.raises(ValueError):
            w.success_from_weight(-0.5)

    @given(st.floats(1e-12, 1.0))
    def test_weight_nonnegative_and_monotone(self, q):
        weight = w.failure_to_weight(q)
        assert weight >= 0.0
        # Smaller failure probability gives larger (or equal capped) weight.
        assert w.failure_to_weight(q / 2) >= weight - 1e-12

    @settings(max_examples=200)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.01, 0.9999))
    def test_edge_weight_capped_at_demand(self, p1, p2, phi):
        demand_weight = w.threshold_to_weight(phi)
        value = w.edge_weight(p1, p2, demand_weight=demand_weight)
        assert 0.0 <= value <= demand_weight + 1e-12


class TestWeightSemantics:
    def test_weight_sum_iff_success_product(self):
        """Sum of weights >= W is equivalent to product of failures <= 1 - Phi."""
        failures = [0.1, 0.05, 0.2]
        total_weight = sum(w.failure_to_weight(q) for q in failures)
        combined = w.combined_failure_probability(failures)
        assert math.exp(-total_weight) == pytest.approx(combined, rel=1e-9)

    def test_meeting_weight_requirement_meets_probability_requirement(self):
        phi = 0.995
        required = w.threshold_to_weight(phi)
        failures = [0.06, 0.06]  # two mediocre paths
        total_weight = sum(w.failure_to_weight(q) for q in failures)
        success = 1.0 - w.combined_failure_probability(failures)
        assert (total_weight >= required) == (success >= phi)
