"""Tests for the unified strategy API (repro.api).

Covers the satellite checklist of the API redesign: registry completeness and
name stability, request/result JSON round-trips (stage timings + audit
fields included), pipeline stage-swap and hook points, batch determinism
across ``jobs``, and the ``repro.__all__`` API-surface snapshot.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.api import (
    SCHEMA_VERSION,
    Designer,
    DesignPipeline,
    DesignRequest,
    RoundStage,
    comparison_designers,
    design_batch,
    designer_names,
    dump_requests_jsonl,
    get_designer,
    load_requests_jsonl,
    register_designer,
    request_from_dict,
    request_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.api.registry import _REGISTRY
from repro.baselines import (
    exact_design,
    greedy_design,
    lp_lower_bound,
    naive_quality_first_design,
    random_design,
    single_tree_design,
)
from repro.core.algorithm import DesignParameters, design_overlay
from repro.core.extensions import color_constrained_parameters, design_overlay_extended
from repro.core.rounding import RoundingParameters
from repro.core.serialization import problem_to_dict
from repro.workloads.tiny import build_tiny_problem

#: The stable strategy catalogue, in registration order.  Renaming or
#: removing an entry is a breaking API change -- update docs/api.md and the
#: migration guide if this pin ever has to move.
EXPECTED_STRATEGIES = [
    "spaa03",
    "spaa03-extended",
    "greedy",
    "naive-quality-first",
    "single-tree",
    "random",
    "exact",
    "milp-exact",
    "lp-bound",
]


@pytest.fixture
def problem():
    return build_tiny_problem()


class TestRegistry:
    def test_every_strategy_registered_with_stable_name(self):
        assert designer_names() == EXPECTED_STRATEGIES

    def test_get_designer_resolves_every_strategy(self):
        for name in EXPECTED_STRATEGIES:
            designer = get_designer(name)
            assert designer.name == name
            assert callable(designer.design)
            assert isinstance(designer, Designer)

    def test_unknown_strategy_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown designer 'nope'"):
            get_designer("nope")

    def test_comparison_designers_are_the_integral_baselines(self):
        names = [d.name for d in comparison_designers()]
        assert names == ["greedy", "naive-quality-first", "single-tree", "random"]

    def test_newly_registered_designer_joins_comparisons(self, problem):
        @register_designer("test-everything-r1", description="test double")
        def _run(request):
            solution = greedy_design(request.problem)
            from repro.api.types import DesignResult

            return DesignResult(strategy="test-everything-r1", solution=solution)

        try:
            assert "test-everything-r1" in [d.name for d in comparison_designers()]
            result = get_designer("test-everything-r1").design(
                DesignRequest(problem=problem)
            )
            assert result.strategy == "test-everything-r1"
        finally:
            _REGISTRY.pop("test-everything-r1", None)

    def test_unknown_option_rejected(self, problem):
        # request.strategy is left at its default: the error must still name
        # the designer actually invoked, not 'spaa03'.
        with pytest.raises(ValueError, match="for strategy 'greedy'"):
            get_designer("greedy").design(
                DesignRequest(problem=problem, options={"typo": 1})
            )


class TestLegacyEquivalence:
    """Every strategy is bit-identical to its pre-registry entry point."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_spaa03_matches_design_overlay(self, problem, seed):
        parameters = DesignParameters(seed=seed, repair_shortfall=True)
        report = design_overlay(problem, parameters)
        result = get_designer("spaa03").design(
            DesignRequest(problem=problem, parameters=parameters)
        )
        assert result.solution.assignments == report.solution.assignments
        assert result.solution.total_cost() == report.solution.total_cost()
        assert result.lower_bound == report.lp_lower_bound
        assert result.report.rounding_attempts == report.rounding_attempts
        # The pipeline's audit stage lands on the report for reuse.
        assert report.solution_audit is not None
        assert report.solution_audit.summary() == result.audit.summary()

    def test_spaa03_extended_matches_design_overlay_extended(self, problem):
        parameters = color_constrained_parameters(DesignParameters(seed=3))
        report = design_overlay_extended(problem, parameters)
        result = get_designer("spaa03-extended").design(
            DesignRequest(problem=problem, parameters=parameters)
        )
        assert result.solution.assignments == report.solution.assignments
        assert result.metadata.get("path_rounding", False) == bool(report.path_rounding)

    def test_baselines_match_legacy_functions(self, problem):
        pairs = [
            ("greedy", greedy_design(problem), {}),
            ("naive-quality-first", naive_quality_first_design(problem), {}),
            ("single-tree", single_tree_design(problem), {}),
            ("random", random_design(problem, rng=11), {"seed": 11}),
        ]
        for name, legacy, options in pairs:
            result = get_designer(name).design(
                DesignRequest(problem=problem, options=options)
            )
            assert result.solution.assignments == legacy.assignments, name
            assert result.audit is not None

    def test_exact_matches_legacy_function(self, problem):
        legacy = exact_design(problem)
        result = get_designer("exact").design(DesignRequest(problem=problem))
        assert result.solution.assignments == legacy.solution.assignments
        assert result.metadata["optimal_cost"] == legacy.optimal_cost
        assert result.metadata["nodes_explored"] == legacy.nodes_explored

    def test_lp_bound_matches_legacy_function(self, problem):
        result = get_designer("lp-bound").design(DesignRequest(problem=problem))
        assert result.lower_bound == pytest.approx(lp_lower_bound(problem), abs=0)
        assert result.solution.assignments == {}


class TestDeprecatedWrappers:
    """Every classic entry point warns once and names its replacement."""

    def test_every_wrapper_emits_a_deprecation_warning(self, problem):
        calls = [
            ("design_overlay", lambda: design_overlay(problem, DesignParameters(seed=0))),
            (
                "design_overlay_extended",
                lambda: design_overlay_extended(
                    problem, color_constrained_parameters(DesignParameters(seed=0))
                ),
            ),
            ("greedy_design", lambda: greedy_design(problem)),
            (
                "naive_quality_first_design",
                lambda: naive_quality_first_design(problem),
            ),
            ("single_tree_design", lambda: single_tree_design(problem)),
            ("random_design", lambda: random_design(problem, rng=1)),
            ("exact_design", lambda: exact_design(problem)),
            ("lp_lower_bound", lambda: lp_lower_bound(problem)),
        ]
        for name, call in calls:
            with pytest.warns(DeprecationWarning, match=f"{name} is deprecated"):
                call()

    def test_warning_names_the_replacement(self, problem):
        with pytest.warns(DeprecationWarning, match="repro.api.run_request"):
            design_overlay(problem, DesignParameters(seed=0))


class TestSerialization:
    def test_request_roundtrip(self, problem):
        request = DesignRequest(
            problem=problem,
            parameters=DesignParameters(
                rounding=RoundingParameters(c=16.0, delta=0.5, seed=9),
                repair_shortfall=True,
                lp_backend="expr",
                max_rounding_attempts=7,
            ),
            strategy="greedy",
            options={"fanout_slack": 2.0},
            request_id="req-42",
        )
        document = request_to_dict(request)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "design-request"
        restored = request_from_dict(json.loads(json.dumps(document)))
        assert restored.strategy == "greedy"
        assert restored.request_id == "req-42"
        assert restored.options == {"fanout_slack": 2.0}
        assert restored.parameters == request.parameters
        assert problem_to_dict(restored.problem) == problem_to_dict(problem)

    def test_result_roundtrip_with_stage_timings_and_audit(self, problem):
        request = DesignRequest(
            problem=problem,
            parameters=DesignParameters(seed=1, repair_shortfall=True),
            request_id="rt-1",
        )
        result = get_designer("spaa03").design(request)
        document = json.loads(json.dumps(result_to_dict(result)))
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "design-result"
        restored = result_from_dict(document, problem)
        assert restored.strategy == "spaa03"
        assert restored.request_id == "rt-1"
        assert restored.solution.assignments == result.solution.assignments
        assert restored.lower_bound == result.lower_bound
        # Stage timings survive exactly (keys and values).
        assert restored.stage_seconds == result.stage_seconds
        assert set(restored.stage_seconds) >= {"formulate", "solve_lp", "rounding", "gap"}
        # Every audit field survives exactly.
        assert restored.audit.weight_fraction == result.audit.weight_fraction
        assert restored.audit.fanout_factor == result.audit.fanout_factor
        assert restored.audit.color_violations == result.audit.color_violations
        assert restored.audit.arc_capacity_factor == result.audit.arc_capacity_factor
        assert restored.audit.unserved_demands == result.audit.unserved_demands
        # The in-memory report is intentionally not serialized.
        assert restored.report is None

    def test_wrong_kind_and_version_rejected(self, problem):
        request_doc = request_to_dict(DesignRequest(problem=problem))
        with pytest.raises(ValueError, match="expected a 'design-result'"):
            result_from_dict(request_doc, problem)
        request_doc["schema_version"] = 99
        with pytest.raises(ValueError, match="unsupported schema_version"):
            request_from_dict(request_doc)


class TestPipeline:
    def test_hooks_intercept_the_fractional_solution(self, problem):
        seen = {}

        def hook(stage_name, context):
            if stage_name == "solve":
                seen["objective"] = context.fractional.objective

        context = DesignPipeline.standard(hooks=[hook]).run(
            problem, DesignParameters(seed=0)
        )
        assert seen["objective"] == context.fractional.objective

    def test_stage_swap_replaces_the_rounding(self, problem):
        class TaggedRoundStage(RoundStage):
            algorithm_label = "tagged-rounding"

            def solution_metadata(self, context):
                metadata = super().solution_metadata(context)
                metadata["swapped"] = True
                return metadata

        base = DesignPipeline.standard()
        pipeline = base.with_stage("round", TaggedRoundStage())
        # with_stage is copy-returning: the template pipeline is untouched.
        assert not any(isinstance(stage, TaggedRoundStage) for stage in base.stages)
        context = pipeline.run(problem, DesignParameters(seed=0))
        assert context.solution.metadata["algorithm"] == "tagged-rounding"
        assert context.solution.metadata["swapped"] is True
        # The swapped stage still produces the same draw for the same seed.
        baseline = design_overlay(problem, DesignParameters(seed=0))
        assert context.solution.assignments == baseline.solution.assignments

    def test_stage_names_and_unknown_swap(self):
        pipeline = DesignPipeline.standard()
        assert [stage.name for stage in pipeline.stages] == [
            "formulate",
            "solve",
            "round",
            "repair",
            "audit",
        ]
        with pytest.raises(KeyError, match="no stage named 'nope'"):
            pipeline.with_stage("nope", RoundStage())

    def test_report_matches_design_overlay(self, problem):
        parameters = DesignParameters(seed=5)
        context = DesignPipeline.standard().run(problem, parameters)
        report = design_overlay(problem, parameters)
        assert context.report().solution.assignments == report.solution.assignments
        assert context.report().formulation_size == report.formulation_size


class TestBatch:
    def _requests(self, problem):
        return [
            DesignRequest(
                problem=problem,
                parameters=DesignParameters(seed=seed, repair_shortfall=True),
                strategy="spaa03",
                request_id=f"spaa03-{seed}",
            )
            for seed in (0, 1)
        ] + [
            DesignRequest(problem=problem, strategy="greedy", request_id="greedy-0"),
            DesignRequest(
                problem=problem,
                parameters=DesignParameters(seed=4),
                strategy="random",
                request_id="random-4",
            ),
        ]

    @staticmethod
    def _comparable(result):
        document = result_to_dict(result)
        document.pop("stage_seconds")  # wall-clock noise
        return document

    def test_jobs_1_vs_jobs_2_bit_identical(self, problem):
        requests = self._requests(problem)
        serial = design_batch(requests, jobs=1)
        parallel = design_batch(requests, jobs=2)
        assert [self._comparable(r) for r in serial] == [
            self._comparable(r) for r in parallel
        ]

    def test_results_in_request_order(self, problem):
        results = design_batch(self._requests(problem), jobs=2)
        assert [r.request_id for r in results] == [
            "spaa03-0",
            "spaa03-1",
            "greedy-0",
            "random-4",
        ]
        assert [r.strategy for r in results] == ["spaa03", "spaa03", "greedy", "random"]

    def test_jsonl_roundtrip(self, problem, tmp_path):
        requests = self._requests(problem)
        path = tmp_path / "requests.jsonl"
        dump_requests_jsonl(requests, path)
        restored = load_requests_jsonl(path)
        assert [r.request_id for r in restored] == [r.request_id for r in requests]
        assert [request_to_dict(r) for r in restored] == [
            request_to_dict(r) for r in requests
        ]

    def test_jsonl_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "design-request"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_requests_jsonl(path)


class TestEvaluation:
    """DesignRequest.evaluation: Monte-Carlo sweeps attached to results."""

    SPEC = dict(scenarios=("baseline", "flash-crowd"), trials=4, num_packets=200, window=40)

    def test_design_attaches_evaluation(self, tiny_problem):
        from repro.api import EvaluationSpec

        request = DesignRequest(
            problem=tiny_problem,
            strategy="greedy",
            evaluation=EvaluationSpec(**self.SPEC),
        )
        result = get_designer("greedy").design(request)
        assert sorted(result.evaluation) == ["baseline", "flash-crowd"]
        for metrics in result.evaluation.values():
            assert 0.0 <= metrics["mean_loss"] <= 1.0
            assert metrics["trials"] == 4

    def test_no_spec_no_evaluation(self, tiny_problem):
        result = get_designer("greedy").design(DesignRequest(problem=tiny_problem))
        assert result.evaluation is None

    def test_bound_only_strategy_skips_evaluation(self, tiny_problem):
        from repro.api import EvaluationSpec

        request = DesignRequest(
            problem=tiny_problem,
            strategy="lp-bound",
            evaluation=EvaluationSpec(**self.SPEC),
        )
        result = get_designer("lp-bound").design(request)
        assert result.evaluation is None

    def test_evaluation_deterministic(self, tiny_problem):
        from repro.api import EvaluationSpec

        results = [
            get_designer("greedy")
            .design(
                DesignRequest(
                    problem=tiny_problem,
                    strategy="greedy",
                    evaluation=EvaluationSpec(**self.SPEC, seed=5),
                )
            )
            .evaluation
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_spec_validation(self):
        from repro.api import EvaluationSpec

        with pytest.raises(ValueError):
            EvaluationSpec(trials=0)
        with pytest.raises(ValueError):
            EvaluationSpec(num_packets=0)
        with pytest.raises(ValueError):
            EvaluationSpec(window=0)
        # Lists normalize to tuples so specs stay hashable-friendly/JSON-safe.
        assert EvaluationSpec(scenarios=["baseline"]).scenarios == ("baseline",)

    def test_request_round_trip_with_evaluation(self, tiny_problem):
        from repro.api import EvaluationSpec

        request = DesignRequest(
            problem=tiny_problem,
            strategy="greedy",
            evaluation=EvaluationSpec(scenarios="all", trials=7, seed=3),
        )
        restored = request_from_dict(request_to_dict(request))
        assert restored.evaluation == request.evaluation
        bare = request_from_dict(request_to_dict(DesignRequest(problem=tiny_problem)))
        assert bare.evaluation is None

    def test_result_round_trip_with_evaluation(self, tiny_problem):
        from repro.api import EvaluationSpec

        request = DesignRequest(
            problem=tiny_problem,
            strategy="greedy",
            evaluation=EvaluationSpec(**self.SPEC),
        )
        result = get_designer("greedy").design(request)
        restored = result_from_dict(result_to_dict(result), tiny_problem)
        assert restored.evaluation == result.evaluation


def test_api_surface_snapshot():
    """Pin ``repro.__all__``: additions are deliberate, removals are breaking."""
    assert sorted(repro.__all__) == sorted(
        [
            "ArtifactCache",
            "Demand",
            "DeliveryEdge",
            "Designer",
            "DesignParameters",
            "DesignPipeline",
            "DesignReport",
            "DesignRequest",
            "DesignResult",
            "DesignService",
            "DesignSession",
            "EvaluationSpec",
            "ExtensionOptions",
            "MonteCarloConfig",
            "OverlayDesignProblem",
            "OverlaySolution",
            "ProblemDelta",
            "RoundingParameters",
            "StreamEdge",
            "apply_delta",
            "build_formulation",
            "build_sparse_formulation",
            "design_batch",
            "design_incremental",
            "design_overlay",
            "design_overlay_extended",
            "designer_names",
            "diff_problems",
            "evaluate_design",
            "fractional_lower_bound",
            "get_designer",
            "invert_delta",
            "register_designer",
            "repair_weight_shortfalls",
            "run_monte_carlo",
            "run_request",
            "simulate_solution",
            "__version__",
        ]
    )
    for name in repro.__all__:
        assert hasattr(repro, name), name
