"""Hypothesis property tests for the incremental engine's invariants.

The contracts under test (see ``docs/incremental.md``):

* deltas are invertible: applying a delta then its inverse restores a
  problem with the same content digest, the engine recognises the round
  trip as identity churn, and the standing design re-binds with an equal
  cost digest;
* dirty-shard detection is monotone: a superset delta never marks fewer
  shards dirty than any of its sub-deltas;
* the incremental update is a pure function of (standing design, delta,
  seed): ``jobs=1`` and ``jobs=N`` produce bit-identical designs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DesignParameters, design_incremental
from repro.api import DesignRequest, get_designer
from repro.core.serialization import canonical_digest, problem_digest
from repro.incremental import (
    ProblemDelta,
    analyze_impact,
    apply_delta,
    churn_stream,
    diff_problems,
    invert_delta,
)
from repro.scale import build_partition
from repro.workloads import (
    InternetScaleConfig,
    RandomInstanceConfig,
    generate_internet_scale_problem,
    random_problem,
)

EVENTS = ["sink-churn", "flash-crowd", "regional-outage", "isp-outage"]


@st.composite
def problems(draw):
    seed = draw(st.integers(0, 1_000))
    if draw(st.booleans()):
        problem, _registry = generate_internet_scale_problem(
            InternetScaleConfig(num_sinks=draw(st.integers(20, 60)), sinks_per_metro=10),
            rng=seed,
        )
        return problem
    return random_problem(
        RandomInstanceConfig(
            num_streams=2,
            num_reflectors=draw(st.integers(5, 10)),
            num_sinks=draw(st.integers(8, 24)),
            fanout_range=(6, 14),
        ),
        rng=seed,
    )


@st.composite
def churned_problems(draw):
    """A problem plus one sampled churn (event, delta, new_problem)."""
    problem = draw(problems())
    event = draw(st.sampled_from(EVENTS))
    churn_seed = draw(st.integers(0, 100))
    ((_event, delta, new_problem),) = list(
        churn_stream(problem, [event], seed=churn_seed)
    )
    return problem, delta, new_problem


def _standing(problem, seed=7):
    return get_designer("sharded:greedy").design(
        DesignRequest(
            problem=problem,
            strategy="sharded:greedy",
            parameters=DesignParameters(seed=seed),
            options={"shards": 3},
        )
    )


def _cost_digest(solution) -> str:
    return canonical_digest({"total_cost": solution.total_cost()})


class TestDeltaInversion:
    @settings(max_examples=15, deadline=None)
    @given(churned_problems())
    def test_delta_then_inverse_restores_problem_and_design(self, case):
        problem, delta, new_problem = case
        restored = apply_delta(new_problem, invert_delta(delta))
        assert problem_digest(restored) == problem_digest(problem)
        assert diff_problems(problem, restored).is_empty

        # The engine sees the round trip as identity churn and re-binds the
        # standing design bit-identically -- equal cost digest included.
        standing = _standing(problem)
        result = design_incremental(
            standing,
            restored,
            parameters=DesignParameters(seed=7),
            options={"shards": 3},
            previous_problem=problem,
        )
        assert result.metadata.get("incremental_identity") is True
        assert result.solution.assignments == standing.solution.assignments
        assert _cost_digest(result.solution) == _cost_digest(standing.solution)


class TestDirtyShardMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(churned_problems(), st.randoms(use_true_random=False))
    def test_superset_delta_never_marks_fewer_shards(self, case, rng):
        problem, delta, new_problem = case
        if delta.sinks_added or delta.sinks_removed:
            # Restrict to content deltas: sub-sampling adds/removes changes
            # the sink set, and with it the partition the shards live on.
            delta = ProblemDelta(
                delivery_changed=dict(delta.delivery_changed),
                stream_edges_changed=dict(delta.stream_edges_changed),
                demands_changed={
                    key: change
                    for key, change in delta.demands_changed.items()
                    if key[0] not in delta.sinks_added
                    and key[0] not in delta.sinks_removed
                },
            )
            delta = ProblemDelta(
                delivery_changed={
                    link: change
                    for link, change in delta.delivery_changed.items()
                    if link[1] in set(problem.sinks)
                },
                stream_edges_changed=dict(delta.stream_edges_changed),
                demands_changed=dict(delta.demands_changed),
            )
            new_problem = apply_delta(problem, delta)
        sub = ProblemDelta(
            delivery_changed={
                link: change
                for link, change in delta.delivery_changed.items()
                if rng.random() < 0.5
            },
            stream_edges_changed={
                link: change
                for link, change in delta.stream_edges_changed.items()
                if rng.random() < 0.5
            },
            demands_changed={
                key: change
                for key, change in delta.demands_changed.items()
                if rng.random() < 0.5
            },
        )
        plan = build_partition(new_problem, shards=3)
        full = analyze_impact(delta, new_problem, plan)
        partial = analyze_impact(sub, apply_delta(problem, sub), plan)
        assert set(partial.dirty_shards) <= set(full.dirty_shards)
        assert partial.affected_demands <= full.affected_demands


class TestJobsDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(churned_problems(), st.integers(0, 10_000), st.sampled_from([2, 3]))
    def test_jobs_are_invisible_in_the_incremental_design(self, case, seed, jobs):
        problem, delta, new_problem = case
        standing = _standing(problem, seed=seed)

        def run(n):
            return design_incremental(
                standing,
                new_problem,
                parameters=DesignParameters(seed=seed),
                options={"shards": 3, "jobs": n},
                previous_problem=problem,
                delta=delta,
            ).solution

        serial, parallel = run(1), run(jobs)
        assert serial.assignments == parallel.assignments
        assert serial.built_reflectors == parallel.built_reflectors
        assert serial.stream_deliveries == parallel.stream_deliveries
