"""Tests for the OverlaySolution container (repro.core.solution)."""

from __future__ import annotations

import pytest

from repro.core.solution import OverlaySolution


@pytest.fixture
def manual_solution(tiny_problem):
    return OverlaySolution.from_assignments(
        tiny_problem,
        {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1"]},
        metadata={"algorithm": "manual"},
    )


class TestConstruction:
    def test_from_mapping_infers_builds_and_deliveries(self, tiny_problem, manual_solution):
        assert manual_solution.built_reflectors == {"r1", "r2"}
        assert manual_solution.stream_deliveries == {("s", "r1"), ("s", "r2")}
        assert manual_solution.assignments[("d1", "s")] == ["r1", "r2"]

    def test_from_pairs_iterable(self, tiny_problem):
        solution = OverlaySolution.from_assignments(
            tiny_problem, [("r1", ("d1", "s")), ("r2", ("d1", "s")), ("r1", ("d1", "s"))]
        )
        assert solution.assignments[("d1", "s")] == ["r1", "r2"]

    def test_duplicate_reflectors_deduplicated(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1", "r1"]})
        assert solution.assignments[("d1", "s")] == ["r1"]


class TestCost:
    def test_total_cost_components(self, tiny_problem, manual_solution):
        expected_reflector = 10.0 + 6.0
        expected_delivery = 1.0 + 0.8  # stream edges to r1 and r2
        expected_assignment = 0.6 + 0.4 + 0.7  # r1-d1, r2-d1, r1-d2
        assert manual_solution.reflector_cost() == pytest.approx(expected_reflector)
        assert manual_solution.stream_delivery_cost() == pytest.approx(expected_delivery)
        assert manual_solution.assignment_cost() == pytest.approx(expected_assignment)
        assert manual_solution.total_cost() == pytest.approx(
            expected_reflector + expected_delivery + expected_assignment
        )

    def test_empty_solution_costs_nothing(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {})
        assert solution.total_cost() == 0.0


class TestReliability:
    def test_failure_probability_is_product_of_path_failures(
        self, tiny_problem, manual_solution
    ):
        demand = tiny_problem.demands[0]  # d1
        q1 = tiny_problem.path_failure(demand, "r1")
        q2 = tiny_problem.path_failure(demand, "r2")
        assert manual_solution.failure_probability(demand) == pytest.approx(q1 * q2)
        assert manual_solution.success_probability(demand) == pytest.approx(1 - q1 * q2)

    def test_unserved_demand_has_zero_success(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        demand_d2 = tiny_problem.demands[1]
        assert solution.success_probability(demand_d2) == 0.0
        assert [d.key for d in solution.unserved_demands()] == [("d2", "s")]

    def test_weight_satisfaction(self, tiny_problem, manual_solution):
        demand = tiny_problem.demands[0]
        delivered = sum(
            tiny_problem.edge_weight(demand, r) for r in ("r1", "r2")
        )
        assert manual_solution.delivered_weight(demand) == pytest.approx(delivered)
        assert manual_solution.weight_satisfaction(demand) == pytest.approx(
            delivered / tiny_problem.demand_weight(demand)
        )

    def test_weight_success_probability_monotone_in_paths(self, tiny_problem):
        single = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        double = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1", "r2"]})
        demand = tiny_problem.demands[0]
        assert double.weight_success_probability(demand) >= single.weight_success_probability(
            demand
        )

    def test_demands_below_threshold(self, tiny_problem):
        # One lossy reflector alone cannot reach 0.995 for d1.
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r3"]})
        below = solution.demands_below_threshold()
        assert ("d1", "s") in [d.key for d in below]


class TestFanoutAndColors:
    def test_fanout_accounting(self, tiny_problem, manual_solution):
        assert manual_solution.fanout_used("r1") == 2
        assert manual_solution.fanout_used("r2") == 1
        assert manual_solution.fanout_used("r3") == 0
        assert manual_solution.fanout_factor("r1") == pytest.approx(2 / 3)
        assert manual_solution.max_fanout_factor() == pytest.approx(2 / 3)

    def test_empty_solution_fanout_zero(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {})
        assert solution.max_fanout_factor() == 0.0

    def test_bandwidth_used(self, tiny_problem, manual_solution):
        assert manual_solution.bandwidth_used("r1") == pytest.approx(2.0)  # two demands x B=1

    def test_color_violations(self, colored_problem):
        demand = colored_problem.demands[0]
        candidates = colored_problem.candidate_reflectors(demand)
        # Find two candidates sharing a color to force a violation.
        by_color: dict = {}
        for reflector in candidates:
            by_color.setdefault(colored_problem.color(reflector), []).append(reflector)
        shared = next((rs for rs in by_color.values() if len(rs) >= 2), None)
        if shared is None:
            pytest.skip("instance has no same-color candidate pair for this demand")
        solution = OverlaySolution.from_assignments(
            colored_problem, {demand.key: shared[:2]}
        )
        violations = solution.color_violations()
        assert violations and violations[0][0].key == demand.key

    def test_summary_keys(self, tiny_problem, manual_solution):
        summary = manual_solution.summary()
        for key in (
            "total_cost",
            "reflectors_built",
            "assignments",
            "unserved_demands",
            "min_weight_satisfaction",
            "max_fanout_factor",
        ):
            assert key in summary
        assert summary["reflectors_built"] == 2
        assert summary["assignments"] == 3
