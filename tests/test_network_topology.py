"""Tests for the overlay topology model (repro.network.topology)."""

from __future__ import annotations

import pytest

from repro.network.topology import (
    NodeRole,
    OverlayLink,
    OverlayNode,
    OverlayTopology,
    StreamSpec,
)


def build_small_topology() -> OverlayTopology:
    topo = OverlayTopology(name="small")
    topo.add_node(OverlayNode("src", NodeRole.SOURCE, location=(0.0, 0.0), isp="ispA"))
    topo.add_node(
        OverlayNode("ref1", NodeRole.REFLECTOR, location=(0.5, 0.5), isp="ispA", capacity=4, cost=12.0)
    )
    topo.add_node(
        OverlayNode("ref2", NodeRole.REFLECTOR, location=(0.6, 0.4), isp="ispB", capacity=3, cost=9.0)
    )
    topo.add_node(OverlayNode("edge1", NodeRole.SINK, location=(1.0, 1.0), isp="ispB"))
    topo.add_node(OverlayNode("edge2", NodeRole.SINK, location=(0.9, 0.1), isp="ispA"))
    topo.add_link(OverlayLink("src", "ref1", loss_probability=0.01, cost=1.0))
    topo.add_link(OverlayLink("src", "ref2", loss_probability=0.02, cost=1.2))
    topo.add_link(OverlayLink("ref1", "edge1", loss_probability=0.03, cost=0.5))
    topo.add_link(OverlayLink("ref1", "edge2", loss_probability=0.04, cost=0.6))
    topo.add_link(OverlayLink("ref2", "edge1", loss_probability=0.05, cost=0.4))
    topo.add_link(OverlayLink("ref2", "edge2", loss_probability=0.02, cost=0.3))
    topo.add_stream(
        StreamSpec(
            name="event",
            source="src",
            bandwidth=2.0,
            subscribers={"edge1": 0.99, "edge2": 0.995},
        )
    )
    return topo


class TestTopologyBuilding:
    def test_roles_and_counts(self):
        topo = build_small_topology()
        assert len(topo.sources) == 1
        assert len(topo.reflectors) == 2
        assert len(topo.sinks) == 2
        summary = topo.size_summary()
        assert summary["links"] == 6
        assert summary["demands"] == 2

    def test_duplicate_node_rejected(self):
        topo = OverlayTopology()
        topo.add_node(OverlayNode("x", NodeRole.SOURCE))
        with pytest.raises(ValueError):
            topo.add_node(OverlayNode("x", NodeRole.SINK))

    def test_link_role_validation(self):
        topo = OverlayTopology()
        topo.add_node(OverlayNode("src", NodeRole.SOURCE))
        topo.add_node(OverlayNode("edge", NodeRole.SINK))
        with pytest.raises(ValueError):
            topo.add_link(OverlayLink("src", "edge", 0.1, 1.0))  # source->sink forbidden
        with pytest.raises(KeyError):
            topo.add_link(OverlayLink("src", "missing", 0.1, 1.0))

    def test_duplicate_link_rejected(self):
        topo = build_small_topology()
        with pytest.raises(ValueError):
            topo.add_link(OverlayLink("src", "ref1", 0.1, 1.0))

    def test_link_validation_ranges(self):
        with pytest.raises(ValueError):
            OverlayLink("a", "b", loss_probability=1.2, cost=1.0)
        with pytest.raises(ValueError):
            OverlayLink("a", "b", loss_probability=0.2, cost=-1.0)

    def test_stream_validation(self):
        topo = build_small_topology()
        with pytest.raises(ValueError):
            topo.add_stream(StreamSpec(name="event", source="src"))  # duplicate name
        with pytest.raises(ValueError):
            topo.add_stream(StreamSpec(name="bad", source="ref1"))  # not a source node
        with pytest.raises(ValueError):
            topo.add_stream(
                StreamSpec(name="bad2", source="src", subscribers={"ref1": 0.9})
            )  # subscriber must be a sink
        with pytest.raises(ValueError):
            topo.add_stream(
                StreamSpec(name="bad3", source="src", subscribers={"edge1": 1.5})
            )

    def test_link_queries(self):
        topo = build_small_topology()
        assert topo.has_link("src", "ref1")
        assert not topo.has_link("ref1", "src")
        assert len(topo.out_links("ref1")) == 2
        assert len(topo.in_links("edge1")) == 2
        with pytest.raises(KeyError):
            topo.link("edge1", "src")


class TestToProblem:
    def test_projection_structure(self):
        topo = build_small_topology()
        problem = topo.to_problem()
        assert problem.num_streams == 1
        assert problem.num_reflectors == 2
        assert problem.num_sinks == 2
        assert problem.num_demands == 2
        assert problem.fanout("ref1") == 4
        assert problem.reflector_cost("ref2") == 9.0
        assert problem.color("ref1") == "ispA"

    def test_stream_edge_cost_scaled_by_bandwidth(self):
        topo = build_small_topology()
        problem = topo.to_problem()
        # Link cost 1.0, bandwidth 2.0 -> stream edge cost 2.0.
        assert problem.stream_edge("event", "ref1").cost == pytest.approx(2.0)
        assert problem.stream_edge("event", "ref1").loss_probability == pytest.approx(0.01)

    def test_delivery_cost_scaled_per_stream(self):
        topo = build_small_topology()
        problem = topo.to_problem()
        assert problem.delivery_cost("ref2", "edge2", "event") == pytest.approx(0.3 * 2.0)
        assert problem.delivery_loss("ref2", "edge2") == pytest.approx(0.02)

    def test_demand_thresholds_carried_over(self):
        topo = build_small_topology()
        problem = topo.to_problem()
        thresholds = {d.sink: d.success_threshold for d in problem.demands}
        assert thresholds == {"edge1": 0.99, "edge2": 0.995}

    def test_resulting_problem_is_designable(self):
        from repro import DesignParameters, design_overlay

        problem = build_small_topology().to_problem()
        report = design_overlay(problem, DesignParameters(seed=0))
        assert report.solution.assignments
