"""Tests for the OverlayDesignProblem builder (repro.core.problem)."""

from __future__ import annotations

import pytest

from repro.core.problem import Demand, OverlayDesignProblem
from repro.core.weights import threshold_to_weight
from repro.workloads.tiny import build_tiny_problem


class TestBuilding:
    def test_counts(self, tiny_problem):
        assert tiny_problem.num_streams == 1
        assert tiny_problem.num_reflectors == 3
        assert tiny_problem.num_sinks == 2
        assert tiny_problem.num_demands == 2
        assert tiny_problem.size_signature() == (1, 3, 2)

    def test_duplicate_stream_rejected(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        with pytest.raises(ValueError):
            problem.add_stream("s")

    def test_duplicate_reflector_rejected(self):
        problem = OverlayDesignProblem()
        problem.add_reflector("r", cost=1.0, fanout=2)
        with pytest.raises(ValueError):
            problem.add_reflector("r", cost=1.0, fanout=2)

    def test_duplicate_sink_rejected(self):
        problem = OverlayDesignProblem()
        problem.add_sink("d")
        with pytest.raises(ValueError):
            problem.add_sink("d")

    def test_duplicate_demand_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            tiny_problem.add_demand("d1", "s", success_threshold=0.9)

    def test_duplicate_edges_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            tiny_problem.add_stream_edge("s", "r1", loss_probability=0.1, cost=1.0)
        with pytest.raises(ValueError):
            tiny_problem.add_delivery_edge("r1", "d1", loss_probability=0.1, cost=1.0)

    def test_unknown_references_rejected(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=2)
        problem.add_sink("d")
        with pytest.raises(KeyError):
            problem.add_stream_edge("nope", "r", 0.1, 1.0)
        with pytest.raises(KeyError):
            problem.add_stream_edge("s", "nope", 0.1, 1.0)
        with pytest.raises(KeyError):
            problem.add_delivery_edge("nope", "d", 0.1, 1.0)
        with pytest.raises(KeyError):
            problem.add_delivery_edge("r", "nope", 0.1, 1.0)
        with pytest.raises(KeyError):
            problem.add_demand("nope", "s", 0.9)
        with pytest.raises(KeyError):
            problem.add_demand("d", "nope", 0.9)

    def test_invalid_numbers_rejected(self):
        problem = OverlayDesignProblem()
        with pytest.raises(ValueError):
            problem.add_stream("s", bandwidth=0.0)
        problem.add_stream("s")
        with pytest.raises(ValueError):
            problem.add_reflector("r", cost=-1.0, fanout=2)
        with pytest.raises(ValueError):
            problem.add_reflector("r", cost=1.0, fanout=0)
        problem.add_reflector("r", cost=1.0, fanout=2)
        problem.add_sink("d")
        with pytest.raises(ValueError):
            problem.add_stream_edge("s", "r", loss_probability=1.5, cost=1.0)
        with pytest.raises(ValueError):
            problem.add_stream_edge("s", "r", loss_probability=0.1, cost=-1.0)
        with pytest.raises(ValueError):
            problem.add_demand("d", "s", success_threshold=1.0)
        with pytest.raises(ValueError):
            problem.add_demand("d", "s", success_threshold=0.0)

    def test_colors_grouping(self):
        problem = OverlayDesignProblem()
        problem.add_reflector("a", cost=1, fanout=1, color="isp1")
        problem.add_reflector("b", cost=1, fanout=1, color="isp1")
        problem.add_reflector("c", cost=1, fanout=1, color="isp2")
        problem.add_reflector("d", cost=1, fanout=1)
        groups = problem.colors()
        assert set(groups) == {"isp1", "isp2"}
        assert sorted(groups["isp1"]) == ["a", "b"]
        assert groups["isp2"] == ["c"]


class TestDerivedQuantities:
    def test_candidate_reflectors(self, tiny_problem):
        demand = tiny_problem.demands[0]
        assert set(tiny_problem.candidate_reflectors(demand)) == {"r1", "r2", "r3"}

    def test_candidate_requires_both_edges(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r1", cost=1.0, fanout=2)
        problem.add_reflector("r2", cost=1.0, fanout=2)
        problem.add_sink("d")
        problem.add_stream_edge("s", "r1", 0.1, 1.0)
        problem.add_delivery_edge("r2", "d", 0.1, 1.0)
        problem.add_demand("d", "s", 0.9)
        demand = problem.demands[0]
        assert problem.candidate_reflectors(demand) == []

    def test_candidate_reflectors_match_full_scan_order(self):
        # The per-sink delivery index must reproduce exactly what a brute
        # force scan over registration order would return, for every demand.
        from repro.workloads import RandomInstanceConfig, random_problem

        problem = random_problem(
            RandomInstanceConfig(num_streams=3, num_reflectors=12, num_sinks=25), rng=17
        )
        for demand in problem.demands:
            brute_force = [
                reflector
                for reflector in problem.reflectors
                if problem.has_stream_edge(demand.stream, reflector)
                and problem.has_delivery_link(reflector, demand.sink)
            ]
            assert problem.candidate_reflectors(demand) == brute_force

    def test_path_failure_uses_serial_rule(self, tiny_problem):
        demand = tiny_problem.demands[0]  # sink d1
        value = tiny_problem.path_failure(demand, "r1")
        assert value == pytest.approx(0.01 + 0.02 - 0.01 * 0.02)

    def test_demand_weight(self, tiny_problem):
        demand = tiny_problem.demands[0]
        assert tiny_problem.demand_weight(demand) == pytest.approx(
            threshold_to_weight(0.995)
        )

    def test_edge_weight_is_capped_at_demand_weight(self, tiny_problem):
        demand = tiny_problem.demands[0]
        for reflector in tiny_problem.candidate_reflectors(demand):
            assert tiny_problem.edge_weight(demand, reflector) <= tiny_problem.demand_weight(
                demand
            ) + 1e-12

    def test_edge_weight_uncapped_larger_when_loss_small(self, tiny_problem):
        demand = tiny_problem.demands[0]
        capped = tiny_problem.edge_weight(demand, "r1", cap_at_demand=True)
        uncapped = tiny_problem.edge_weight(demand, "r1", cap_at_demand=False)
        assert uncapped >= capped

    def test_delivery_cost_stream_override(self):
        problem = OverlayDesignProblem()
        problem.add_stream("hd")
        problem.add_stream("sd")
        problem.add_reflector("r", cost=1.0, fanout=4)
        problem.add_sink("d")
        problem.add_stream_edge("hd", "r", 0.01, 1.0)
        problem.add_stream_edge("sd", "r", 0.01, 1.0)
        problem.add_delivery_edge("r", "d", 0.05, cost=1.0, stream_costs={"hd": 3.0})
        assert problem.delivery_cost("r", "d", "hd") == 3.0
        assert problem.delivery_cost("r", "d", "sd") == 1.0

    def test_total_fanout(self, tiny_problem):
        assert tiny_problem.total_fanout() == 3 + 2 + 2

    def test_assignment_cost(self, tiny_problem):
        demand = tiny_problem.demands[1]  # d2
        assert tiny_problem.assignment_cost(demand, "r3") == pytest.approx(0.2)

    def test_missing_edge_lookup_raises(self, tiny_problem):
        with pytest.raises(KeyError):
            tiny_problem.stream_edge("s", "missing")
        with pytest.raises(KeyError):
            tiny_problem.delivery_loss("r1", "missing")


class TestValidationAndFeasibility:
    def test_validate_ok(self, tiny_problem):
        tiny_problem.validate()  # should not raise

    def test_validate_empty(self):
        with pytest.raises(ValueError):
            OverlayDesignProblem().validate()

    def test_validate_unreachable_demand(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=2)
        problem.add_sink("d")
        problem.add_stream_edge("s", "r", 0.1, 1.0)
        problem.add_demand("d", "s", 0.9)
        with pytest.raises(ValueError):
            problem.validate()

    def test_feasibility_report_flags_impossible_demand(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=2)
        problem.add_sink("d")
        # A very lossy single path cannot give 0.999 success.
        problem.add_stream_edge("s", "r", 0.3, 1.0)
        problem.add_delivery_edge("r", "d", 0.3, 1.0)
        problem.add_demand("d", "s", success_threshold=0.999)
        issues = problem.feasibility_report()
        assert len(issues) == 1
        assert issues[0].demand.key == ("d", "s")
        assert issues[0].available_weight < issues[0].required_weight

    def test_feasibility_report_empty_for_good_instance(self, tiny_problem):
        assert tiny_problem.feasibility_report() == []


class TestDemandObject:
    def test_key(self):
        demand = Demand("d", "s", 0.9)
        assert demand.key == ("d", "s")

    def test_build_helper_used_by_fixtures(self):
        problem = build_tiny_problem()
        assert problem.num_demands == 2
