"""Tests for the Section-6 extension drivers (repro.core.extensions)."""

from __future__ import annotations

from repro.core.algorithm import DesignParameters
from repro.core.extensions import (
    color_constrained_parameters,
    design_overlay_extended,
)
from repro.core.formulation import ExtensionOptions
from repro.core.problem import OverlayDesignProblem


class TestExtendedPipeline:
    def test_matches_plain_pipeline_without_extensions(self, tiny_problem):
        report = design_overlay_extended(tiny_problem, DesignParameters(seed=0))
        assert report.path_rounding is None
        assert report.entangled_sets == []
        assert report.solution.assignments
        assert report.cost_ratio > 0

    def test_color_constraints_trigger_path_rounding(self, colored_problem):
        params = color_constrained_parameters(DesignParameters(seed=1))
        report = design_overlay_extended(colored_problem, params)
        assert report.path_rounding is not None
        assert report.solution.metadata["path_rounding"] is True

    def test_color_constrained_solution_uses_diverse_isps(self, colored_problem):
        params = color_constrained_parameters(DesignParameters(seed=1))
        report = design_overlay_extended(colored_problem, params)
        # At most 2 same-color copies per demand (capacity 1 with slack 2 in the
        # rounding); typically exactly at most 1.
        for demand in colored_problem.demands:
            per_color: dict = {}
            for reflector in report.solution.reflectors_serving(demand):
                color = colored_problem.color(reflector)
                per_color[color] = per_color.get(color, 0) + 1
            for copies in per_color.values():
                assert copies <= 2

    def test_bandwidth_extension_runs_through_plain_gap(self, small_random_problem):
        params = DesignParameters(
            seed=2, extensions=ExtensionOptions(use_bandwidth=True)
        )
        report = design_overlay_extended(small_random_problem, params)
        assert report.path_rounding is None
        assert report.solution.assignments

    def test_arc_capacities_trigger_path_rounding(self):
        problem = OverlayDesignProblem()
        problem.add_stream("a")
        problem.add_stream("b")
        for name in ("r1", "r2", "r3"):
            problem.add_reflector(name, cost=2.0, fanout=6)
            problem.add_stream_edge("a", name, 0.02, 1.0)
            problem.add_stream_edge("b", name, 0.02, 1.0)
        problem.add_sink("d")
        problem.add_delivery_edge("r1", "d", 0.03, 0.5, capacity=1.0)
        problem.add_delivery_edge("r2", "d", 0.03, 0.5, capacity=1.0)
        problem.add_delivery_edge("r3", "d", 0.03, 0.5)
        problem.add_demand("d", "a", 0.99)
        problem.add_demand("d", "b", 0.99)
        params = DesignParameters(
            seed=0, extensions=ExtensionOptions(use_arc_capacities=True)
        )
        report = design_overlay_extended(problem, params)
        assert report.path_rounding is not None
        # Capacity-1 arcs may be used for at most 2 demands (slack 2).
        for reflector in ("r1", "r2"):
            used = sum(
                1
                for (sink, _stream), reflectors in report.solution.assignments.items()
                if sink == "d" and reflector in reflectors
            )
            assert used <= 2

    def test_repair_composes_with_extensions(self, colored_problem):
        params = color_constrained_parameters(
            DesignParameters(seed=3, repair_shortfall=True)
        )
        report = design_overlay_extended(colored_problem, params)
        for demand in colored_problem.demands:
            assert report.solution.weight_satisfaction(demand) >= 0.25 - 1e-9

    def test_color_constrained_parameters_preserve_other_fields(self):
        base = DesignParameters(seed=5, repair_shortfall=True, max_rounding_attempts=7)
        params = color_constrained_parameters(base)
        assert params.extensions.use_color_constraints
        assert params.repair_shortfall is True
        assert params.max_rounding_attempts == 7
        assert params.rounding.seed == 5
