"""Golden regression corpus: seed-pinned end-to-end designs for every strategy.

Every registered strategy (plus the sharded pipeline around the paper
algorithm) is run on three reference workloads with a pinned seed, and the
observable outcome -- total cost, build/assignment counts, fanout, the audit
digest, the LP lower bound where one is computed -- is compared against the
committed JSON fixtures under ``tests/goldens/``.

A drift here means an algorithm changed behaviour.  If the change is
intentional, regenerate and commit the fixtures::

    python -m pytest tests/test_golden_designs.py --regen-goldens

The suite also fails when a *new* strategy is registered without a golden
entry, so the corpus can never silently fall behind the catalogue.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path

import pytest

from repro.api import DesignRequest, designer_names, get_designer
from repro.api.types import audit_to_dict
from repro.core.algorithm import DesignParameters
from repro.workloads import (
    AkamaiLikeConfig,
    RandomInstanceConfig,
    generate_akamai_like_topology,
    random_problem,
)
from repro.workloads.tiny import build_tiny_problem

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The pinned seed every strategy runs with (parameters.rounding.seed).
GOLDEN_SEED = 2003

#: Extra (non-registered) strategies the corpus must always cover.
EXTRA_STRATEGIES = ["sharded:spaa03"]


def _random_reference():
    return random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=6, num_sinks=8), rng=0
    )


def _akamai_reference():
    topology, _registry = generate_akamai_like_topology(
        AkamaiLikeConfig(
            num_regions=2,
            colos_per_region=2,
            num_isps=2,
            num_streams=2,
            reflectors_per_colo=1,
        ),
        rng=0,
    )
    return topology.to_problem()


#: The three reference workloads (stable names = fixture file stems).
WORKLOADS = {
    "tiny": build_tiny_problem,
    "random-mid": _random_reference,
    "akamai-small": _akamai_reference,
}


def _round(value: float) -> float:
    return round(float(value), 9)


def _digest(document: dict) -> str:
    """Stable short digest of a JSON-compatible document (floats rounded)."""

    def canonical(obj):
        if isinstance(obj, float):
            return _round(obj)
        if isinstance(obj, dict):
            return {str(k): canonical(v) for k, v in sorted(obj.items())}
        if isinstance(obj, (list, tuple)):
            return [canonical(v) for v in obj]
        return obj

    payload = json.dumps(canonical(document), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def golden_strategies() -> list[str]:
    return [*designer_names(), *EXTRA_STRATEGIES]


def run_golden(problem, strategy: str) -> dict:
    """Run one strategy with the pinned seed and snapshot its outcome."""
    designer = get_designer(strategy)
    options = {"shards": 3, "jobs": 1} if strategy.startswith("sharded:") else {}
    result = designer.design(
        DesignRequest(
            problem=problem,
            parameters=DesignParameters(seed=GOLDEN_SEED),
            strategy=strategy,
            options=options,
        )
    )
    entry: dict = {"total_cost": _round(result.total_cost)}
    if designer.produces_solution:
        solution = result.solution
        entry["reflectors_built"] = len(solution.built_reflectors)
        entry["assignments"] = sum(len(v) for v in solution.assignments.values())
        entry["unserved_demands"] = len(solution.unserved_demands())
        entry["max_fanout_factor"] = _round(solution.max_fanout_factor())
        entry["audit_digest"] = _digest(audit_to_dict(result.audit))
    if result.lower_bound is not None:
        entry["lower_bound"] = _round(result.lower_bound)
    return entry


def golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"{workload}.json"


def load_golden(workload: str) -> dict:
    path = golden_path(workload)
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with "
            "`python -m pytest tests/test_golden_designs.py --regen-goldens`"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_golden_designs(workload, regen_goldens):
    problem = WORKLOADS[workload]()
    observed = {
        "workload": workload,
        "seed": GOLDEN_SEED,
        "strategies": {
            strategy: run_golden(problem, strategy)
            for strategy in golden_strategies()
        },
    }
    if regen_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path(workload).write_text(
            json.dumps(observed, indent=2, sort_keys=True) + "\n"
        )
        return

    golden = load_golden(workload)
    assert golden.get("seed") == GOLDEN_SEED, "seed pin changed; regenerate goldens"
    missing = sorted(set(golden_strategies()) - set(golden["strategies"]))
    assert not missing, (
        f"strategies {missing} have no golden entry for {workload!r}; run "
        "--regen-goldens and commit the diff"
    )
    for strategy, expected in sorted(golden["strategies"].items()):
        actual = observed["strategies"].get(strategy)
        assert actual is not None, f"golden strategy {strategy!r} no longer runs"
        assert sorted(actual) == sorted(expected), (
            f"{workload}/{strategy}: snapshot fields changed "
            f"({sorted(actual)} vs {sorted(expected)})"
        )
        for field, want in expected.items():
            got = actual[field]
            if isinstance(want, float):
                assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9), (
                    f"{workload}/{strategy}/{field}: {got!r} != {want!r}"
                )
            else:
                assert got == want, f"{workload}/{strategy}/{field}: {got!r} != {want!r}"


def test_corpus_covers_every_registered_strategy():
    """Adding a strategy without regenerating the corpus must fail loudly."""
    for workload in WORKLOADS:
        golden = load_golden(workload)
        missing = sorted(set(designer_names()) - set(golden["strategies"]))
        assert not missing, (
            f"registered strategies {missing} missing from {workload!r} goldens; "
            "run --regen-goldens"
        )
        assert set(EXTRA_STRATEGIES) <= set(golden["strategies"])
