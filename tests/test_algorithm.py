"""End-to-end tests of the design pipeline (repro.core.algorithm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import (
    DesignParameters,
    design_overlay,
    fractional_lower_bound,
    repair_weight_shortfalls,
)
from repro.core.problem import OverlayDesignProblem
from repro.core.rounding import RoundingParameters
from repro.core.solution import OverlaySolution
from repro.workloads.random_instances import RandomInstanceConfig, random_problem


class TestPipeline:
    def test_produces_complete_report(self, tiny_problem):
        report = design_overlay(tiny_problem, DesignParameters(seed=0))
        assert report.solution.assignments
        assert report.lp_lower_bound > 0
        # Note: the cost ratio may be below 1 because the algorithm's output is
        # allowed to under-serve weights by a constant factor (Section 5); the
        # LP bound only lower-bounds *fully feasible* designs.
        assert report.cost_ratio > 0
        assert set(report.stage_seconds) >= {"formulate", "solve_lp", "rounding", "gap"}
        assert report.formulation_size[0] > 0
        summary = report.summary()
        assert "cost_ratio" in summary and "lp_variables" in summary

    def test_solution_supports_assignments(self, tiny_problem):
        report = design_overlay(tiny_problem, DesignParameters(seed=0))
        solution = report.solution
        for (sink, stream), reflectors in solution.assignments.items():
            for reflector in reflectors:
                assert reflector in solution.built_reflectors
                assert (stream, reflector) in solution.stream_deliveries

    def test_fully_feasible_solution_costs_at_least_lp_bound(self, small_random_problem):
        """The LP optimum lower-bounds any design that fully meets every demand
        within the original fanout bounds (here: the greedy baseline)."""
        from repro.baselines import greedy_design

        report = design_overlay(small_random_problem, DesignParameters(seed=1))
        feasible = greedy_design(small_random_problem)
        if all(
            feasible.weight_satisfaction(d) >= 1.0 - 1e-9
            for d in small_random_problem.demands
        ):
            assert feasible.total_cost() >= report.lp_lower_bound - 1e-6

    def test_reproducible_with_seed(self, small_random_problem):
        a = design_overlay(small_random_problem, DesignParameters(seed=9))
        b = design_overlay(small_random_problem, DesignParameters(seed=9))
        assert a.solution.assignments == b.solution.assignments
        assert a.solution.total_cost() == pytest.approx(b.solution.total_cost())

    def test_explicit_rng_used(self, small_random_problem):
        rng = np.random.default_rng(5)
        a = design_overlay(small_random_problem, DesignParameters(), rng=rng)
        rng = np.random.default_rng(5)
        b = design_overlay(small_random_problem, DesignParameters(), rng=rng)
        assert a.solution.assignments == b.solution.assignments

    def test_paper_constants_meet_section5_guarantees(self, small_random_problem):
        params = DesignParameters(rounding=RoundingParameters.paper_defaults(), seed=3)
        report = design_overlay(small_random_problem, params)
        for demand in small_random_problem.demands:
            assert report.solution.weight_satisfaction(demand) >= 0.25 - 1e-9
        assert report.solution.max_fanout_factor() <= 4.0 + 1e-9
        assert report.cost_ratio <= 2.0 * report.rounded.multiplier + 1e-9

    def test_no_retry_single_attempt(self, tiny_problem):
        params = DesignParameters(retry_rounding=False, seed=2)
        report = design_overlay(tiny_problem, params)
        assert report.rounding_attempts == 1

    def test_infeasible_problem_raises(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=1)
        problem.add_sink("d")
        problem.add_stream_edge("s", "r", 0.5, 1.0)
        problem.add_delivery_edge("r", "d", 0.5, 1.0)
        problem.add_demand("d", "s", success_threshold=0.99999)
        with pytest.raises(ValueError):
            design_overlay(problem)

    def test_structurally_invalid_problem_raises(self):
        with pytest.raises(ValueError):
            design_overlay(OverlayDesignProblem())

    def test_seed_parameter_propagates_to_rounding(self):
        params = DesignParameters(seed=77)
        assert params.rounding.seed == 77


class TestRepair:
    def test_repair_tops_up_shortfalls(self, small_random_problem):
        params = DesignParameters(seed=4, repair_shortfall=True)
        repaired_report = design_overlay(small_random_problem, params)
        plain_report = design_overlay(
            small_random_problem, DesignParameters(seed=4, repair_shortfall=False)
        )
        repaired_min = min(
            repaired_report.solution.weight_satisfaction(d)
            for d in small_random_problem.demands
        )
        plain_min = min(
            plain_report.solution.weight_satisfaction(d) for d in small_random_problem.demands
        )
        assert repaired_min >= plain_min - 1e-9
        assert repaired_report.solution.metadata.get("repaired", False) or repaired_min >= 1.0 - 1e-9

    def test_repair_respects_fanout_slack(self, small_random_problem):
        report = design_overlay(
            small_random_problem,
            DesignParameters(seed=4, repair_shortfall=True, repair_fanout_slack=4.0),
        )
        assert report.solution.max_fanout_factor() <= 4.0 + 1e-9

    def test_repair_function_directly(self, tiny_problem):
        poor = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r3"]})
        repaired = repair_weight_shortfalls(tiny_problem, poor, fanout_slack=1.0)
        for demand in tiny_problem.demands:
            if repaired.reflectors_serving(demand):
                assert repaired.weight_satisfaction(demand) >= poor.weight_satisfaction(demand)
        assert repaired.metadata.get("repaired") is True

    def test_repair_noop_when_already_satisfied(self, tiny_problem):
        full = OverlaySolution.from_assignments(
            tiny_problem, {d.key: tiny_problem.candidate_reflectors(d) for d in tiny_problem.demands}
        )
        repaired = repair_weight_shortfalls(tiny_problem, full)
        assert repaired.assignments == full.assignments


class TestLowerBoundHelper:
    def test_lower_bound_matches_report(self, tiny_problem):
        bound = fractional_lower_bound(tiny_problem)
        report = design_overlay(tiny_problem, DesignParameters(seed=0))
        assert bound == pytest.approx(report.lp_lower_bound, rel=1e-6)

    def test_lower_bound_positive(self, small_random_problem):
        assert fractional_lower_bound(small_random_problem) > 0


class TestScalingSanity:
    @pytest.mark.parametrize("num_sinks", [5, 15])
    def test_larger_instances_still_solve(self, num_sinks):
        config = RandomInstanceConfig(num_streams=2, num_reflectors=8, num_sinks=num_sinks)
        problem = random_problem(config, rng=0)
        report = design_overlay(problem, DesignParameters(seed=0))
        assert report.solution.assignments
        assert report.cost_ratio < 50.0
