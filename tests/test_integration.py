"""Cross-module integration tests: workload -> design -> audit -> simulation."""

from __future__ import annotations

import pytest

from repro import DesignParameters, design_overlay, design_overlay_extended
from repro.analysis import audit_solution, check_paper_guarantees, compare_designs
from repro.baselines import greedy_design, naive_quality_first_design, single_tree_design
from repro.core.extensions import color_constrained_parameters
from repro.core.rounding import RoundingParameters
from repro.network.reliability import solution_reliability_summary
from repro.simulation import FailureSchedule, SimulationConfig, simulate_solution
from repro.workloads import (
    AkamaiLikeConfig,
    FlashCrowdConfig,
    generate_akamai_like_topology,
    generate_flash_crowd_scenario,
)


@pytest.fixture(scope="module")
def akamai_setup():
    config = AkamaiLikeConfig(num_regions=2, colos_per_region=3, num_isps=3, num_streams=2)
    topology, registry = generate_akamai_like_topology(config, rng=0)
    problem = topology.to_problem()
    return topology, registry, problem


class TestAkamaiWorkloadEndToEnd:
    def test_design_meets_paper_guarantees(self, akamai_setup):
        _topology, _registry, problem = akamai_setup
        report = design_overlay(problem, DesignParameters(seed=1))
        checks = check_paper_guarantees(problem, report)
        assert all(check.holds for check in checks), [
            (c.name, c.measured, c.bound) for c in checks if not c.holds
        ]

    def test_repaired_design_meets_thresholds_and_simulates_cleanly(self, akamai_setup):
        _topology, _registry, problem = akamai_setup
        report = design_overlay(problem, DesignParameters(seed=1, repair_shortfall=True))
        solution = report.solution
        # Analytic: (almost) every demand should now meet its threshold.
        below = solution.demands_below_threshold()
        assert len(below) <= max(1, problem.num_demands // 10)
        # Simulated: measured loss within each demand's budget (with slack for noise).
        sim = simulate_solution(
            problem, solution, SimulationConfig(num_packets=20_000, seed=2)
        )
        for demand in problem.demands:
            result = sim.result_for(demand.key)
            analytic_loss = solution.failure_probability(demand)
            assert result.loss_rate == pytest.approx(analytic_loss, abs=0.01)

    def test_algorithm_cheaper_than_naive_with_comparable_quality(self, akamai_setup):
        _topology, _registry, problem = akamai_setup
        report = design_overlay(problem, DesignParameters(seed=3, repair_shortfall=True))
        designs = {
            "spaa03+repair": report.solution,
            "greedy": greedy_design(problem),
            "naive": naive_quality_first_design(problem),
            "single-tree": single_tree_design(problem),
        }
        rows = {row["design"]: row for row in compare_designs(problem, designs)}
        # The LP-based design should not cost more than the quality-first baseline.
        assert rows["spaa03+repair"]["total_cost"] <= rows["naive"]["total_cost"] * 1.05
        # And the redundant design meets far more quality targets than a single
        # multicast tree, which cannot reach the strict thresholds at all.
        assert (
            rows["spaa03+repair"]["fraction_meeting_threshold"]
            >= rows["single-tree"]["fraction_meeting_threshold"]
        )
        assert rows["spaa03+repair"]["fraction_meeting_threshold"] >= 0.85

    def test_isp_outage_resilience_of_diverse_design(self, akamai_setup):
        _topology, registry, problem = akamai_setup
        params = color_constrained_parameters(
            DesignParameters(seed=5, repair_shortfall=True)
        )
        diverse = design_overlay_extended(problem, params).solution
        tree = single_tree_design(problem)
        diverse_summary = solution_reliability_summary(problem, diverse, registry)
        tree_summary = solution_reliability_summary(problem, tree, registry)
        assert (
            diverse_summary["mean_success_worst_single_outage"]
            >= tree_summary["mean_success_worst_single_outage"] - 1e-9
        )

    def test_simulated_isp_outage_matches_scenario_analysis(self, akamai_setup):
        topology, registry, problem = akamai_setup
        report = design_overlay(problem, DesignParameters(seed=7, repair_shortfall=True))
        solution = report.solution
        victim = registry.names()[0]
        # Restrict the outage to reflector nodes so the simulation matches the
        # Section-6.4 analytical model (which removes reflectors of the failed
        # ISP but keeps edgeservers reachable).
        node_isp = {r: problem.color(r) for r in problem.reflectors}
        schedule = FailureSchedule.single_isp_outage(victim, 10_000, fraction=1.0)
        sim = simulate_solution(
            problem,
            solution,
            SimulationConfig(num_packets=10_000, failures=schedule, seed=3),
            node_isp=node_isp,
        )
        from repro.network.reliability import demand_success_probability

        for demand in problem.demands:
            expected_success = demand_success_probability(
                problem,
                demand,
                solution.reflectors_serving(demand),
                failed_isps={victim},
                reflector_isp={r: node_isp.get(r) for r in problem.reflectors},
            )
            measured_loss = sim.result_for(demand.key).loss_rate
            assert measured_loss == pytest.approx(1.0 - expected_success, abs=0.02)


class TestFlashCrowdEndToEnd:
    def test_flash_crowd_design_and_simulation(self):
        config = FlashCrowdConfig(
            deployment=AkamaiLikeConfig(num_regions=2, colos_per_region=2, num_streams=1)
        )
        topology, _registry = generate_flash_crowd_scenario(config, rng=4)
        problem = topology.to_problem()
        report = design_overlay(
            problem,
            DesignParameters(
                seed=0, repair_shortfall=True, rounding=RoundingParameters(c=16.0)
            ),
        )
        event_demands = [d for d in problem.demands if d.stream == "flash-crowd-event"]
        assert event_demands
        served = [d for d in event_demands if report.solution.reflectors_serving(d)]
        assert len(served) == len(event_demands)
        audit = audit_solution(problem, report.solution)
        assert audit.max_fanout_factor <= 4.0 + 1e-9

    def test_deterministic_end_to_end(self):
        config = FlashCrowdConfig(
            deployment=AkamaiLikeConfig(num_regions=2, colos_per_region=2, num_streams=1)
        )
        topology_a, _ = generate_flash_crowd_scenario(config, rng=9)
        topology_b, _ = generate_flash_crowd_scenario(config, rng=9)
        problem_a, problem_b = topology_a.to_problem(), topology_b.to_problem()
        report_a = design_overlay(problem_a, DesignParameters(seed=1))
        report_b = design_overlay(problem_b, DesignParameters(seed=1))
        assert report_a.solution.assignments == report_b.solution.assignments
        assert report_a.solution.total_cost() == pytest.approx(
            report_b.solution.total_cost()
        )
