"""Tests for the Section-6.5 path rounding (repro.core.path_rounding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.formulation import ExtensionOptions, build_formulation
from repro.core.path_rounding import (
    arc_capacity_entangled_sets,
    color_entangled_sets,
    path_round,
)
from repro.core.problem import OverlayDesignProblem
from repro.core.rounding import RoundingParameters, round_solution


def _rounded(problem, options=None, c=64.0, seed=0):
    formulation = build_formulation(problem, options)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    return round_solution(problem, fractional, RoundingParameters(c=c, seed=seed))


class TestEntangledSets:
    def test_color_sets_grouped_per_demand_and_color(self, colored_problem):
        rounded = _rounded(colored_problem)
        support = list(rounded.x.keys())
        sets = color_entangled_sets(colored_problem, support)
        for entangled in sets:
            assert entangled.capacity == 1.0
            demand_keys = {key[1] for key in entangled.keys}
            colors = {colored_problem.color(key[0]) for key in entangled.keys}
            assert len(demand_keys) == 1
            assert len(colors) == 1
            assert len(entangled.keys) >= 2

    def test_uncolored_problem_yields_no_color_sets(self, tiny_problem):
        rounded = _rounded(tiny_problem)
        assert color_entangled_sets(tiny_problem, list(rounded.x.keys())) == []

    def test_arc_capacity_sets(self):
        problem = OverlayDesignProblem()
        problem.add_stream("a")
        problem.add_stream("b")
        problem.add_reflector("r", cost=1.0, fanout=8)
        problem.add_reflector("r2", cost=1.0, fanout=8)
        problem.add_sink("d")
        for stream in ("a", "b"):
            problem.add_stream_edge(stream, "r", 0.01, 1.0)
            problem.add_stream_edge(stream, "r2", 0.01, 1.0)
        problem.add_delivery_edge("r", "d", 0.02, 0.5, capacity=1.0)
        problem.add_delivery_edge("r2", "d", 0.02, 0.5)
        problem.add_demand("d", "a", 0.99)
        problem.add_demand("d", "b", 0.99)
        rounded = _rounded(problem)
        sets = arc_capacity_entangled_sets(problem, list(rounded.x.keys()))
        assert len(sets) <= 1
        if sets:
            assert sets[0].capacity == 1.0
            assert all(key[0] == "r" for key in sets[0].keys)


class TestPathRounding:
    def test_unconstrained_path_rounding_serves_demands(self, tiny_problem):
        rounded = _rounded(tiny_problem)
        result = path_round(tiny_problem, rounded, rng=np.random.default_rng(0))
        assert result.assignments
        assert result.boxes_served == result.boxes_total
        served_demands = {key[1] for key in result.assignments}
        assert served_demands == {d.key for d in tiny_problem.demands}

    def test_weight_guarantee_similar_to_gap(self, small_random_problem):
        rounded = _rounded(small_random_problem, seed=2)
        result = path_round(small_random_problem, rounded, rng=np.random.default_rng(1))
        served: dict = {}
        for reflector, demand_key in result.assignments:
            served.setdefault(demand_key, []).append(reflector)
        for demand in small_random_problem.demands:
            delivered = sum(
                small_random_problem.edge_weight(demand, r)
                for r in served.get(demand.key, [])
            )
            assert delivered >= small_random_problem.demand_weight(demand) / 4.0 - 1e-9

    def test_color_constraints_respected_within_slack(self, colored_problem):
        options = ExtensionOptions(use_color_constraints=True)
        rounded = _rounded(colored_problem, options=options, seed=1)
        support = list(rounded.x.keys())
        entangled = color_entangled_sets(colored_problem, support)
        result = path_round(
            colored_problem,
            rounded,
            entangled_sets=entangled,
            rng=np.random.default_rng(3),
            entangled_slack=2.0,
        )
        # At most "capacity * slack" distinct reflectors of one color per demand.
        used_pairs = result.assignments
        for entangled_set in entangled:
            used = len(used_pairs & entangled_set.keys)
            assert used <= 2.0 * entangled_set.capacity + 1e-9
        assert result.violation_factors.get("entangled", 0.0) <= 2.0 + 1e-9

    def test_fanout_violation_bounded(self, small_random_problem):
        rounded = _rounded(small_random_problem, seed=5)
        result = path_round(small_random_problem, rounded, rng=np.random.default_rng(5))
        per_reflector: dict = {}
        for reflector, demand_key in result.assignments:
            per_reflector[reflector] = per_reflector.get(reflector, 0) + 1
        for reflector, used in per_reflector.items():
            assert used <= 4.0 * small_random_problem.fanout(reflector) + 1e-9

    def test_cost_reported_matches_assignments(self, tiny_problem):
        rounded = _rounded(tiny_problem)
        result = path_round(tiny_problem, rounded, rng=np.random.default_rng(0))
        expected = sum(
            tiny_problem.delivery_cost(reflector, sink, stream)
            for reflector, (sink, stream) in result.assignments
        )
        assert result.cost == pytest.approx(expected)
        assert result.lp_cost >= 0.0

    def test_empty_support_returns_empty_result(self, tiny_problem):
        rounded = _rounded(tiny_problem)
        rounded.x = {}
        result = path_round(tiny_problem, rounded, rng=np.random.default_rng(0))
        assert result.assignments == set()
        assert result.boxes_total == 0

    def test_deterministic_with_rng(self, colored_problem):
        rounded = _rounded(colored_problem, seed=7)
        a = path_round(colored_problem, rounded, rng=np.random.default_rng(11))
        b = path_round(colored_problem, rounded, rng=np.random.default_rng(11))
        assert a.assignments == b.assignments
