"""Tests for the LP model container and its compilation (repro.lp.model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import LinearExpr, LinearProgram, Objective


class TestVariables:
    def test_add_and_lookup(self):
        model = LinearProgram()
        x = model.add_variable("x", lower=0.0, upper=2.0)
        assert model.num_variables == 1
        assert model.variable_by_name("x") is x
        assert x.lower == 0.0 and x.upper == 2.0

    def test_anonymous_names(self):
        model = LinearProgram()
        a = model.add_variable()
        b = model.add_variable()
        assert a.name == "x0" and b.name == "x1"

    def test_duplicate_name_rejected(self):
        model = LinearProgram()
        model.add_variable("x")
        with pytest.raises(ValueError):
            model.add_variable("x")

    def test_invalid_bounds_rejected(self):
        model = LinearProgram()
        with pytest.raises(ValueError):
            model.add_variable("x", lower=2.0, upper=1.0)


class TestConstraintsAndObjective:
    def test_add_constraint_names(self):
        model = LinearProgram()
        x = model.add_variable("x")
        c1 = model.add_constraint(x <= 1.0)
        c2 = model.add_constraint(x >= 0.5, name="floor")
        assert c1.name == "c0"
        assert c2.name == "floor"
        assert model.num_constraints == 2

    def test_add_constraint_rejects_non_constraint(self):
        model = LinearProgram()
        x = model.add_variable("x")
        with pytest.raises(TypeError):
            model.add_constraint(x + 1.0)  # an expression, not a constraint

    def test_objective_value(self):
        model = LinearProgram()
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.set_objective(2 * x + y + 3.0)
        assert model.objective_value([1.0, 2.0]) == pytest.approx(7.0)

    def test_objective_from_variable(self):
        model = LinearProgram()
        x = model.add_variable("x")
        model.set_objective(x, sense=Objective.MAXIMIZE)
        assert model.objective_sense is Objective.MAXIMIZE


class TestCompile:
    def test_compile_shapes_and_signs(self):
        model = LinearProgram()
        x = model.add_variable("x", upper=1.0)
        y = model.add_variable("y")
        model.add_constraint(x + y <= 4.0)
        model.add_constraint(x - y >= -2.0)
        model.add_constraint((x + 2 * y).equals(3.0))
        model.set_objective(x + 2 * y)
        compiled = model.compile()
        assert compiled.c.tolist() == [1.0, 2.0]
        assert compiled.A_ub.shape == (2, 2)
        assert compiled.A_eq.shape == (1, 2)
        # ge constraints are flipped to <= form.
        row = compiled.A_ub.toarray()[1]
        assert row.tolist() == [-1.0, 1.0]
        assert compiled.b_ub[1] == pytest.approx(2.0)
        assert compiled.bounds == [(0.0, 1.0), (0.0, None)]

    def test_compile_maximization_negates_objective(self):
        model = LinearProgram(objective_sense=Objective.MAXIMIZE)
        x = model.add_variable("x", upper=1.0)
        model.set_objective(3 * x)
        compiled = model.compile()
        assert compiled.c.tolist() == [-3.0]
        assert compiled.objective_sign == -1.0

    def test_compile_no_constraints(self):
        model = LinearProgram()
        model.add_variable("x", upper=1.0)
        compiled = model.compile()
        assert compiled.A_ub is None and compiled.A_eq is None

    def test_compile_keeps_constant(self):
        model = LinearProgram()
        x = model.add_variable("x")
        model.set_objective(x + 10.0)
        compiled = model.compile()
        assert compiled.objective_constant == 10.0

    def test_compile_sparse_pattern(self):
        model = LinearProgram()
        xs = [model.add_variable(f"x{i}") for i in range(50)]
        model.add_constraint(LinearExpr.sum(xs[:3]) <= 1.0)
        compiled = model.compile()
        assert compiled.A_ub.nnz == 3
        assert compiled.A_ub.shape == (1, 50)
        assert np.count_nonzero(compiled.c) == 0
