"""Tests for the Section-2 LP formulation (repro.core.formulation)."""

from __future__ import annotations

import pytest

from repro.core.formulation import ExtensionOptions, build_formulation
from repro.core.problem import OverlayDesignProblem
from repro.lp import Sense


class TestFormulationStructure:
    def test_variable_counts(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        # z per reflector, y per stream edge, x per (reflector, demand) pair.
        assert len(formulation.z_vars) == 3
        assert len(formulation.y_vars) == 3
        assert len(formulation.x_vars) == 6
        assert formulation.num_variables == 12

    def test_constraint_families_present(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        names = [c.name for c in formulation.model.constraints]
        assert any(name.startswith("(1)") for name in names)
        assert any(name.startswith("(2)") for name in names)
        assert any(name.startswith("(3)") for name in names)
        assert any(name.startswith("(4)") for name in names)
        assert any(name.startswith("(5)") for name in names)

    def test_weight_constraints_are_ge(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        weight_constraints = [
            c for c in formulation.model.constraints if c.name.startswith("(5)")
        ]
        assert len(weight_constraints) == tiny_problem.num_demands
        assert all(c.sense is Sense.GE for c in weight_constraints)
        for constraint in weight_constraints:
            assert constraint.rhs > 0

    def test_cutting_plane_can_be_dropped(self, tiny_problem):
        base = build_formulation(tiny_problem)
        without = build_formulation(tiny_problem, ExtensionOptions(drop_cutting_plane=True))
        base_names = {c.name for c in base.model.constraints}
        without_names = {c.name for c in without.model.constraints}
        assert any(name.startswith("(4)") for name in base_names)
        assert not any(name.startswith("(4)") for name in without_names)
        assert without.num_constraints < base.num_constraints

    def test_weights_cached_consistently(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        for (reflector, demand_key), weight in formulation.weights.items():
            demand = next(d for d in tiny_problem.demands if d.key == demand_key)
            assert weight == pytest.approx(tiny_problem.edge_weight(demand, reflector))

    def test_assignment_key_queries(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        demand = tiny_problem.demands[0]
        keys = formulation.assignment_keys_for_demand(demand)
        assert len(keys) == 3
        assert all(key[1] == demand.key for key in keys)
        r1_keys = formulation.assignment_keys_for_reflector("r1")
        assert len(r1_keys) == 2

    def test_invalid_problem_rejected(self):
        with pytest.raises(ValueError):
            build_formulation(OverlayDesignProblem())


class TestFormulationSolution:
    def test_lp_solves_and_is_feasible(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        solution = formulation.solve()
        assert solution.is_optimal
        # Every constraint of the LP is (near) satisfied by the solution.
        for constraint in formulation.model.constraints:
            assert constraint.violation(solution.values) <= 1e-6

    def test_fractional_solution_extraction(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        fractional = formulation.fractional_solution(formulation.solve())
        assert fractional.objective > 0
        assert set(fractional.z) == set(tiny_problem.reflectors)
        assert all(0.0 - 1e-9 <= value <= 1.0 + 1e-9 for value in fractional.z.values())
        assert all(0.0 - 1e-9 <= value <= 1.0 + 1e-9 for value in fractional.x.values())

    def test_fractional_weight_constraints_met(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        fractional = formulation.fractional_solution(formulation.solve())
        for demand in tiny_problem.demands:
            delivered = sum(
                fractional.x.get((reflector, demand.key), 0.0)
                * tiny_problem.edge_weight(demand, reflector)
                for reflector in tiny_problem.candidate_reflectors(demand)
            )
            assert delivered + 1e-6 >= tiny_problem.demand_weight(demand)

    def test_fractional_cost_matches_objective(self, tiny_problem):
        formulation = build_formulation(tiny_problem)
        fractional = formulation.fractional_solution(formulation.solve())
        assert fractional.cost(tiny_problem) == pytest.approx(fractional.objective, rel=1e-6)

    def test_lower_bound_monotone_in_demands(self, tiny_problem):
        """Adding a demand can only increase the LP optimum."""
        base = build_formulation(tiny_problem).solve().objective

        harder = OverlayDesignProblem(name="harder")
        harder.add_stream("s")
        for name in ("r1", "r2", "r3"):
            info = tiny_problem.reflector_info(name)
            harder.add_reflector(name, cost=info.cost, fanout=info.fanout)
        for sink in ("d1", "d2", "d3"):
            harder.add_sink(sink)
        for edge in tiny_problem.stream_edges():
            harder.add_stream_edge(edge.stream, edge.reflector, edge.loss_probability, edge.cost)
        for reflector, sink in tiny_problem.delivery_links():
            harder.add_delivery_edge(
                reflector,
                sink,
                loss_probability=tiny_problem.delivery_loss(reflector, sink),
                cost=tiny_problem.delivery_cost(reflector, sink, "s"),
            )
        harder.add_delivery_edge("r1", "d3", loss_probability=0.05, cost=0.5)
        harder.add_delivery_edge("r2", "d3", loss_probability=0.06, cost=0.5)
        for demand in tiny_problem.demands:
            harder.add_demand(demand.sink, demand.stream, demand.success_threshold)
        harder.add_demand("d3", "s", success_threshold=0.99)
        harder_bound = build_formulation(harder).solve().objective
        assert harder_bound >= base - 1e-9

    def test_unsolved_extraction_raises_for_infeasible(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=1)
        problem.add_sink("d")
        problem.add_stream_edge("s", "r", 0.4, 1.0)
        problem.add_delivery_edge("r", "d", 0.4, 1.0)
        problem.add_demand("d", "s", success_threshold=0.9999)
        formulation = build_formulation(problem)
        lp_solution = formulation.solve()
        assert not lp_solution.is_optimal
        with pytest.raises(ValueError):
            formulation.fractional_solution(lp_solution)


class TestExtensionsInFormulation:
    def test_bandwidth_changes_fanout_constraints(self, tiny_problem):
        # With bandwidth 1.0 everywhere the constraints are unchanged; scale
        # one stream up by rebuilding the instance with a larger bandwidth.
        problem = OverlayDesignProblem()
        problem.add_stream("hd", bandwidth=4.0)
        problem.add_reflector("r", cost=1.0, fanout=4)
        problem.add_sink("d1")
        problem.add_sink("d2")
        problem.add_stream_edge("hd", "r", 0.01, 1.0)
        problem.add_delivery_edge("r", "d1", 0.02, 0.5)
        problem.add_delivery_edge("r", "d2", 0.02, 0.5)
        problem.add_demand("d1", "hd", 0.99)
        problem.add_demand("d2", "hd", 0.99)
        plain = build_formulation(problem)
        weighted = build_formulation(problem, ExtensionOptions(use_bandwidth=True))
        plain_fanout = next(c for c in plain.model.constraints if c.name == "(3)[r]")
        weighted_fanout = next(c for c in weighted.model.constraints if c.name == "(3)[r]")
        # Bandwidth 4 means each assignment consumes 4 units of fanout.
        plain_coeffs = sorted(plain_fanout.expr.coeffs.values())
        weighted_coeffs = sorted(weighted_fanout.expr.coeffs.values())
        assert max(weighted_coeffs) == pytest.approx(4.0)
        assert max(plain_coeffs) == pytest.approx(1.0)

    def test_reflector_capacity_constraint_added(self):
        problem = OverlayDesignProblem()
        problem.add_stream("a")
        problem.add_stream("b")
        problem.add_reflector("r", cost=1.0, fanout=4, capacity=1)
        problem.add_sink("d")
        problem.add_stream_edge("a", "r", 0.01, 1.0)
        problem.add_stream_edge("b", "r", 0.01, 1.0)
        problem.add_delivery_edge("r", "d", 0.02, 0.5)
        problem.add_demand("d", "a", 0.9)
        formulation = build_formulation(
            problem, ExtensionOptions(use_reflector_capacities=True)
        )
        assert any(c.name.startswith("(8)") for c in formulation.model.constraints)

    def test_arc_capacity_constraint_added(self):
        problem = OverlayDesignProblem()
        problem.add_stream("a")
        problem.add_reflector("r", cost=1.0, fanout=4)
        problem.add_sink("d")
        problem.add_stream_edge("a", "r", 0.01, 1.0)
        problem.add_delivery_edge("r", "d", 0.02, 0.5, capacity=1.0)
        problem.add_demand("d", "a", 0.9)
        formulation = build_formulation(problem, ExtensionOptions(use_arc_capacities=True))
        assert any(c.name.startswith("(7')") for c in formulation.model.constraints)

    def test_color_constraints_added_only_for_multi_member_groups(self, colored_problem):
        formulation = build_formulation(
            colored_problem, ExtensionOptions(use_color_constraints=True)
        )
        color_constraints = [
            c for c in formulation.model.constraints if c.name.startswith("(9)")
        ]
        assert color_constraints, "expected color constraints on a colored instance"
        for constraint in color_constraints:
            assert constraint.sense is Sense.LE
            assert constraint.rhs == pytest.approx(1.0)
            assert len(constraint.expr.coeffs) >= 2
