"""The streaming engine: determinism contract, differential and memory tests.

The anchors:

* **bit-identity** -- a single-tile streaming run must reproduce the batched
  engine's statistics exactly (same kernel, same ``SeedSequence([seed, 0])``
  stream), compared demand-by-demand on exact integer sufficient statistics;
* **the determinism contract** -- ``jobs``, tile scheduling order, and a
  ``max_memory`` bound that leaves the tile grid unchanged never change a
  result; only ``(seed, packets, window, loss model, failures, grid)`` do;
* **flat memory** -- peak traced working set must stay (near-)constant along
  a trial ladder, the property that lets the fold audit million-demand
  instances the batched engine cannot hold in RAM.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.api import (
    EvaluationSpec,
    evaluation_spec_from_dict,
    evaluation_spec_to_dict,
)
from repro.baselines import greedy_design
from repro.core.solution import OverlaySolution
from repro.simulation import (
    MonteCarloConfig,
    StreamingConfig,
    StreamingMemoryError,
    compile_path_table,
    evaluate_design_streaming,
    failure_scenario_names,
    get_load_trace,
    load_trace_names,
    run_monte_carlo,
    run_streaming_monte_carlo,
)
from repro.simulation.streaming import (
    StreamingAccumulator,
    TraceAccumulator,
    plan_tiles,
    resolve_tiling,
    threshold_budget_counts,
    window_sizes,
    worst_window_scale,
)
from repro.workloads import RandomInstanceConfig, random_problem
from repro.workloads.tiny import build_tiny_problem

_ACC_FIELDS = (
    "trial_counts",
    "loss_sum",
    "loss_max",
    "meets",
    "duplicates_sum",
    "worst_sum",
    "worst_max",
    "loss_histogram",
    "trial_loss_sum",
)


def _workload(seed: int = 5):
    problem = random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=8, num_sinks=16), rng=seed
    )
    return problem, greedy_design(problem)


def _assert_accumulators_equal(a: StreamingAccumulator, b: StreamingAccumulator) -> None:
    for name in _ACC_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


def _batched_integer_stats(report, num_packets: int, scale: int) -> dict:
    """Per-demand exact integer statistics recovered from the batched floats.

    The batched engine's per-trial fractions are correctly-rounded divisions
    of integer counts, so ``rint(loss * P)`` / ``rint(worst * scale)`` are
    bit-exact inversions.
    """
    stats = {}
    for demand in report.demands:
        loss = np.rint(np.asarray(demand.loss) * num_packets).astype(np.int64)
        worst = np.rint(np.asarray(demand.worst_window) * scale).astype(np.int64)
        duplicates = np.asarray(demand.duplicates).astype(np.int64)
        stats[demand.demand_key] = {
            "loss_sum": int(loss.sum()),
            "loss_max": int(loss.max()),
            "worst_sum": int(worst.sum()),
            "worst_max": int(worst.max()),
            "duplicates_sum": int(duplicates.sum()),
            "meets": demand.meets_threshold_fraction,
        }
    return stats


# ---------------------------------------------------------------------------
# Differential: streaming vs the in-RAM batched engine
# ---------------------------------------------------------------------------


class TestBatchedDifferential:
    def test_single_tile_is_bit_identical_to_batched(self):
        problem, solution = _workload()
        packets, trials, window, seed = 420, 6, 100, 11
        config = StreamingConfig(
            num_packets=packets,
            trials=trials,
            window=window,
            seed=seed,
            demand_tile=10**9,
            trial_tile=10**9,
        )
        streaming = run_streaming_monte_carlo(problem, solution, config)
        assert streaming.plan.num_tiles == 1
        # One tile => one SeedSequence([seed, 0]) stream; the batched engine
        # in one chunk (huge max_batch_bytes) consumes the same draws.
        batched = run_monte_carlo(
            problem,
            solution,
            MonteCarloConfig(
                num_packets=packets, trials=trials, window=window, max_batch_bytes=2**40
            ),
            rng=np.random.default_rng(np.random.SeedSequence([seed, 0])),
        )
        scale = streaming.accumulator.worst_scale
        by_key = _batched_integer_stats(batched, packets, scale)
        assert set(by_key) == set(streaming.demand_keys)
        for row, key in enumerate(streaming.demand_keys):
            expected = by_key[key]
            assert int(streaming.accumulator.loss_sum[row]) == expected["loss_sum"], key
            assert int(streaming.accumulator.loss_max[row]) == expected["loss_max"], key
            assert int(streaming.accumulator.worst_sum[row]) == expected["worst_sum"], key
            assert int(streaming.accumulator.worst_max[row]) == expected["worst_max"], key
            assert (
                int(streaming.accumulator.duplicates_sum[row])
                == expected["duplicates_sum"]
            ), key
            # count / trials on both sides: bit-equal, not approx.
            assert float(streaming.meets_threshold_fraction[row]) == expected["meets"], key

    def test_worst_window_max_matches_batched_floats(self):
        # The scaled-integer fold must reproduce max_w(count_w / b_w) bit for
        # bit, including the short tail window (420 = 4 x 100 + 20).
        problem, solution = _workload()
        config = StreamingConfig(
            num_packets=420, trials=4, window=100, seed=3, demand_tile=10**9, trial_tile=10**9
        )
        streaming = run_streaming_monte_carlo(problem, solution, config)
        batched = run_monte_carlo(
            problem,
            solution,
            MonteCarloConfig(num_packets=420, trials=4, window=100, max_batch_bytes=2**40),
            rng=np.random.default_rng(np.random.SeedSequence([3, 0])),
        )
        by_key = {d.demand_key: d for d in batched.demands}
        for row, key in enumerate(streaming.demand_keys):
            expected = float(np.asarray(by_key[key].worst_window).max())
            assert float(streaming.worst_window_max[row]) == expected


# ---------------------------------------------------------------------------
# The determinism contract
# ---------------------------------------------------------------------------


class TestDeterminismContract:
    def test_repeat_runs_are_identical(self):
        problem, solution = _workload()
        config = StreamingConfig(
            num_packets=200, trials=5, window=64, seed=9, demand_tile=3, trial_tile=2
        )
        first = run_streaming_monte_carlo(problem, solution, config)
        second = run_streaming_monte_carlo(problem, solution, config)
        assert first.plan == second.plan
        _assert_accumulators_equal(first.accumulator, second.accumulator)

    def test_jobs_never_change_results(self):
        problem, solution = _workload()
        config = StreamingConfig(
            num_packets=200, trials=4, window=64, seed=7, demand_tile=4, trial_tile=2
        )
        serial = run_streaming_monte_carlo(problem, solution, config, traces=("diurnal",))
        parallel = run_streaming_monte_carlo(
            problem, solution, config, traces=("diurnal",), jobs=2
        )
        assert serial.plan.num_tiles > 1
        _assert_accumulators_equal(serial.accumulator, parallel.accumulator)
        for name in ("active_cells", "lost_packets", "rebuffer_cells"):
            assert np.array_equal(
                getattr(serial.traces["diurnal"].accumulator, name),
                getattr(parallel.traces["diurnal"].accumulator, name),
            )

    def test_max_memory_with_unchanged_grid_changes_nothing(self):
        problem, solution = _workload()
        base = StreamingConfig(
            num_packets=200, trials=4, window=64, seed=7, demand_tile=4, trial_tile=2
        )
        bounded = StreamingConfig(
            num_packets=200,
            trials=4,
            window=64,
            seed=7,
            demand_tile=4,
            trial_tile=2,
            max_memory=2**40,
        )
        table = compile_path_table(
            problem, solution, base.failures, base.num_packets, None
        )
        assert resolve_tiling(table, base) == resolve_tiling(table, bounded)
        _assert_accumulators_equal(
            run_streaming_monte_carlo(problem, solution, base).accumulator,
            run_streaming_monte_carlo(problem, solution, bounded).accumulator,
        )

    def test_extending_trials_preserves_the_prefix(self):
        # Appending trial tiles must not disturb earlier tiles' streams: the
        # first 4 trials of an 8-trial run equal the 4-trial run exactly.
        problem, solution = _workload()

        def run(trials):
            return run_streaming_monte_carlo(
                problem,
                solution,
                StreamingConfig(
                    num_packets=200,
                    trials=trials,
                    window=64,
                    seed=13,
                    demand_tile=10**9,
                    trial_tile=4,
                ),
            )

        short, long = run(4), run(8)
        assert np.array_equal(
            short.accumulator.trial_loss_sum, long.accumulator.trial_loss_sum[:4]
        )

    def test_trace_activity_is_grid_independent(self):
        # Session windows come from their own SeedSequence stream, realized
        # once per run -- so active-session counts cannot depend on the grid.
        problem, solution = _workload()

        def active_cells(demand_tile, trial_tile):
            report = run_streaming_monte_carlo(
                problem,
                solution,
                StreamingConfig(
                    num_packets=200,
                    trials=4,
                    window=64,
                    seed=21,
                    demand_tile=demand_tile,
                    trial_tile=trial_tile,
                ),
                traces=("metro-diurnal",),
            )
            return report.traces["metro-diurnal"].accumulator.active_cells

        assert np.array_equal(active_cells(10**9, 10**9), active_cells(3, 2))


# ---------------------------------------------------------------------------
# Tiling and the memory bound
# ---------------------------------------------------------------------------


class TestTiling:
    def test_plan_partitions_the_plane(self):
        problem, solution = _workload()
        config = StreamingConfig(num_packets=200, trials=7, window=64, demand_tile=3, trial_tile=2)
        table = compile_path_table(problem, solution, config.failures, 200, None)
        plan = plan_tiles(table, config)
        served = len(table.demand_keys)
        covered = [d for d0, d1 in plan.demand_ranges for d in range(d0, d1)]
        assert covered == list(range(served))
        assert sum(chunk for _, chunk in plan.trial_offsets) == config.trials
        assert plan.num_tiles == len(plan.demand_ranges) * len(plan.trial_offsets)

    def test_max_memory_shrinks_trial_tile_first(self):
        problem, solution = _workload()
        config = StreamingConfig(num_packets=400, trials=32, window=100)
        table = compile_path_table(problem, solution, config.failures, 400, None)
        free_demand, free_trial = resolve_tiling(table, config)
        # Tighten until the grid changes; the demand tile must be the last
        # thing to give.
        grids = []
        for exponent in range(30, 9, -1):
            bounded = StreamingConfig(
                num_packets=400, trials=32, window=100, max_memory=2**exponent
            )
            try:
                demand_tile, trial_tile = resolve_tiling(table, bounded)
            except StreamingMemoryError:
                break
            grids.append((bounded, (demand_tile, trial_tile)))
            assert demand_tile <= free_demand and trial_tile <= free_trial
            if demand_tile < free_demand:
                assert trial_tile == 1
        assert any(grid != (free_demand, free_trial) for _, grid in grids)
        # Determinism: the same bound always resolves the same grid.
        tightest, grid = grids[-1]
        assert resolve_tiling(table, tightest) == grid

    def test_impossible_bound_raises_streaming_memory_error(self):
        problem, solution = _workload()
        config = StreamingConfig(num_packets=400, trials=4, window=100, max_memory=1)
        with pytest.raises(StreamingMemoryError, match="single demand row"):
            run_streaming_monte_carlo(problem, solution, config)

    def test_peak_memory_is_flat_along_a_trial_ladder(self):
        # Satellite regression: peak traced allocation must not grow with the
        # trial count (the batched engine's would grow linearly).
        problem = random_problem(
            RandomInstanceConfig(num_streams=2, num_reflectors=10, num_sinks=250), rng=7
        )
        solution = greedy_design(problem)
        table = compile_path_table(problem, solution, StreamingConfig().failures, 240, None)
        peaks = {}
        for trials in (4, 16, 48):
            config = StreamingConfig(
                num_packets=240,
                trials=trials,
                window=80,
                seed=1,
                demand_tile=64,
                trial_tile=4,
            )
            tracemalloc.start()
            try:
                report = run_streaming_monte_carlo(problem, solution, config, table=table)
                _, peaks[trials] = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            assert report.trials == trials
        assert max(peaks.values()) <= 64 * 2**20
        assert max(peaks.values()) / min(peaks.values()) <= 2.0, peaks


# ---------------------------------------------------------------------------
# Accumulator algebra
# ---------------------------------------------------------------------------


def _filled_accumulator(seed: int) -> StreamingAccumulator:
    rng = np.random.default_rng(seed)
    acc = StreamingAccumulator.zeros(5, 6, 100, 50, 8)
    for name in _ACC_FIELDS:
        array = getattr(acc, name)
        array[:] = rng.integers(0, 1000, array.shape)
    return acc


class TestAccumulatorAlgebra:
    def test_merge_is_commutative(self):
        ab = _filled_accumulator(1).merge(_filled_accumulator(2))
        ba = _filled_accumulator(2).merge(_filled_accumulator(1))
        _assert_accumulators_equal(ab, ba)

    def test_merge_is_associative(self):
        left = _filled_accumulator(1).merge(_filled_accumulator(2)).merge(_filled_accumulator(3))
        right = _filled_accumulator(1).merge(
            _filled_accumulator(2).merge(_filled_accumulator(3))
        )
        _assert_accumulators_equal(left, right)

    def test_incompatible_merge_is_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            StreamingAccumulator.zeros(5, 6, 100, 50, 8).merge(
                StreamingAccumulator.zeros(5, 6, 100, 50, 16)
            )
        with pytest.raises(ValueError, match="different traces"):
            TraceAccumulator.zeros("a", 4).merge(TraceAccumulator.zeros("b", 4))

    def test_threshold_budget_counts_match_float_semantics(self):
        num_packets = 417
        thresholds = np.asarray([0.0, 0.5, 0.9, 0.99, 0.999, 1.0])
        budget = (1.0 - thresholds) + 1e-12
        counts = threshold_budget_counts(thresholds, num_packets)
        for budget_value, count in zip(budget, counts):
            assert count / num_packets <= budget_value
            if count < num_packets:
                assert (count + 1) / num_packets > budget_value

    def test_worst_window_scale_covers_the_tail(self):
        sizes = window_sizes(420, 100)
        assert sizes.tolist() == [100, 100, 100, 100, 20]
        scale, weights = worst_window_scale(420, 100)
        assert scale % 100 == 0 and scale % 20 == 0
        assert np.array_equal(weights * sizes, np.full(5, scale))


# ---------------------------------------------------------------------------
# Unserved demands and trace replay
# ---------------------------------------------------------------------------


class TestUnservedAndTraces:
    def test_unserved_demand_counts_as_total_loss(self):
        problem = build_tiny_problem()
        solution = OverlaySolution.from_assignments(problem, {("d1", "s"): ["r1"]})
        report = run_streaming_monte_carlo(
            problem,
            solution,
            StreamingConfig(num_packets=200, trials=3, window=64, seed=0),
            traces=("diurnal",),
        )
        row = report.demand_index(("d2", "s"))
        assert float(report.mean_loss_per_demand[row]) == 1.0
        assert float(report.max_loss_per_demand[row]) == 1.0
        assert float(report.worst_window_max[row]) == 1.0
        assert float(report.meets_threshold_fraction[row]) == 0.0
        assert int(report.paths[row]) == 0
        # The analytic unserved fold reaches the trace too: its sessions are
        # always rebuffering while active.
        trace = report.traces["diurnal"]
        assert trace.rebuffer_session_fraction >= 1.0 / report.num_demands

    def test_trace_replay_reports_per_window_metrics(self):
        problem, solution = _workload()
        report = run_streaming_monte_carlo(
            problem,
            solution,
            StreamingConfig(num_packets=420, trials=4, window=100, seed=2),
            traces=("diurnal", "metro-diurnal"),
        )
        assert set(report.traces) == {"diurnal", "metro-diurnal"}
        for trace in report.traces.values():
            assert trace.num_windows == 5
            rows = trace.rows()
            assert len(rows) == trace.num_windows
            summary = trace.summary()
            assert summary["peak_active_sessions"] > 0
            assert np.all(trace.active_sessions <= report.num_demands)
            assert np.all((trace.window_loss_rate >= 0) & (trace.window_loss_rate <= 1))
            assert np.all((trace.rebuffer_fraction >= 0) & (trace.rebuffer_fraction <= 1))
            assert 0.0 <= trace.rebuffer_session_fraction <= 1.0
        # Different traces realize different load curves.
        assert not np.array_equal(
            report.traces["diurnal"].accumulator.active_cells,
            report.traces["metro-diurnal"].accumulator.active_cells,
        )

    def test_trace_catalogue_and_unknown_names(self):
        names = load_trace_names()
        assert {"diurnal", "flash-crowd", "metro-diurnal"} <= set(names)
        assert get_load_trace("diurnal").name == "diurnal"
        with pytest.raises(KeyError):
            get_load_trace("no-such-trace")


# ---------------------------------------------------------------------------
# Catalogue sweep + EvaluationSpec plumbing
# ---------------------------------------------------------------------------


class TestStreamingEvaluation:
    def test_sweep_is_subset_insensitive_and_carries_trace_metrics(self):
        problem, solution = _workload()
        names = failure_scenario_names()[:2]
        kwargs = dict(trials=2, num_packets=200, window=64, seed=4, traces=("diurnal",))
        both = evaluate_design_streaming(problem, solution, names, **kwargs)
        alone = evaluate_design_streaming(problem, solution, [names[1]], **kwargs)
        assert both[names[1]] == alone[names[1]]
        row = both[names[0]]
        assert 0.0 <= row["mean_loss"] <= 1.0
        assert "trace:diurnal:peak_window_loss" in row
        assert "trace:diurnal:rebuffer_session_fraction" in row

    def test_spec_roundtrip_preserves_streaming_fields(self):
        spec = EvaluationSpec(
            scenarios=("baseline",),
            trials=5,
            mode="streaming",
            traces=("diurnal", "metro-diurnal"),
            max_memory=1 << 20,
        )
        assert evaluation_spec_from_dict(evaluation_spec_to_dict(spec)) == spec

    def test_batched_spec_dict_is_byte_stable(self):
        # Streaming fields are additive: a batched spec's document must not
        # grow new keys (old documents stay byte-identical across builds).
        data = evaluation_spec_to_dict(EvaluationSpec())
        assert set(data) == {"scenarios", "trials", "num_packets", "window", "seed"}
        legacy = evaluation_spec_from_dict(dict(data))
        assert legacy.mode == "batched"
        assert legacy.traces == ()
        assert legacy.max_memory is None

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="mode"):
            EvaluationSpec(mode="tiled")
        with pytest.raises(ValueError, match="traces require"):
            EvaluationSpec(traces=("diurnal",))
        with pytest.raises(ValueError, match="max_memory"):
            EvaluationSpec(mode="streaming", max_memory=0)
        with pytest.raises(ValueError, match="rebuffer_loss"):
            StreamingConfig(rebuffer_loss=0.0)
        with pytest.raises(ValueError, match="trial_tile"):
            StreamingConfig(trial_tile=0)
