"""Tests for exact reliability computation (repro.network.reliability)."""

from __future__ import annotations

import pytest

from repro.core.solution import OverlaySolution
from repro.network.isp import ISP, ISPRegistry
from repro.network.reliability import (
    delivery_success_probability,
    demand_success_probability,
    isp_outage_success_probability,
    solution_reliability_summary,
)


@pytest.fixture
def colored_tiny(tiny_problem):
    """Tiny problem re-labelled with ISP colors (conftest problem has none)."""
    # Rebuild with colors to exercise the ISP-aware paths.
    from repro.core.problem import OverlayDesignProblem

    problem = OverlayDesignProblem(name="tiny-colored")
    problem.add_stream("s")
    problem.add_reflector("r1", cost=10.0, fanout=3, color="ispA")
    problem.add_reflector("r2", cost=6.0, fanout=2, color="ispB")
    problem.add_reflector("r3", cost=4.0, fanout=2, color="ispA")
    problem.add_sink("d1")
    problem.add_sink("d2")
    for edge in tiny_problem.stream_edges():
        problem.add_stream_edge(edge.stream, edge.reflector, edge.loss_probability, edge.cost)
    for reflector, sink in tiny_problem.delivery_links():
        problem.add_delivery_edge(
            reflector,
            sink,
            loss_probability=tiny_problem.delivery_loss(reflector, sink),
            cost=tiny_problem.delivery_cost(reflector, sink, "s"),
        )
    for demand in tiny_problem.demands:
        problem.add_demand(demand.sink, demand.stream, demand.success_threshold)
    return problem


class TestDeliverySuccess:
    def test_independent_paths_product_rule(self):
        assert delivery_success_probability([0.1, 0.2]) == pytest.approx(1 - 0.02)
        assert delivery_success_probability([]) == 0.0

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            delivery_success_probability([1.2])


class TestDemandSuccess:
    def test_matches_solution_computation(self, colored_tiny):
        solution = OverlaySolution.from_assignments(
            colored_tiny, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r2"]}
        )
        demand = colored_tiny.demands[0]
        expected = solution.success_probability(demand)
        computed = demand_success_probability(
            colored_tiny, demand, solution.reflectors_serving(demand)
        )
        assert computed == pytest.approx(expected)

    def test_failed_isp_removes_paths(self, colored_tiny):
        demand = colored_tiny.demands[0]
        both = demand_success_probability(colored_tiny, demand, ["r1", "r2"])
        without_a = demand_success_probability(
            colored_tiny, demand, ["r1", "r2"], failed_isps={"ispA"}
        )
        only_r2 = demand_success_probability(colored_tiny, demand, ["r2"])
        assert without_a == pytest.approx(only_r2)
        assert without_a < both

    def test_all_paths_down_gives_zero(self, colored_tiny):
        demand = colored_tiny.demands[0]
        assert (
            demand_success_probability(
                colored_tiny, demand, ["r1", "r3"], failed_isps={"ispA"}
            )
            == 0.0
        )


class TestIspOutageExpectation:
    def test_expectation_between_best_and_worst_case(self, colored_tiny):
        registry = ISPRegistry()
        registry.add_many([ISP("ispA", 0.05), ISP("ispB", 0.05)])
        solution = OverlaySolution.from_assignments(
            colored_tiny, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1", "r2"]}
        )
        demand = colored_tiny.demands[0]
        expected = isp_outage_success_probability(colored_tiny, solution, demand, registry)
        no_outage = solution.success_probability(demand)
        assert 0.0 < expected <= no_outage + 1e-12

    def test_no_isps_reduces_to_plain_reliability(self, colored_tiny):
        registry = ISPRegistry()
        solution = OverlaySolution.from_assignments(colored_tiny, {("d1", "s"): ["r1"]})
        demand = colored_tiny.demands[0]
        assert isp_outage_success_probability(
            colored_tiny, solution, demand, registry
        ) == pytest.approx(solution.success_probability(demand))

    def test_diverse_isps_more_resilient_than_single_isp(self, colored_tiny):
        """The Section-6.4 motivation: spreading copies across ISPs survives outages."""
        registry = ISPRegistry()
        registry.add_many([ISP("ispA", 0.2), ISP("ispB", 0.2)])
        demand = colored_tiny.demands[0]
        diverse = OverlaySolution.from_assignments(colored_tiny, {demand.key: ["r1", "r2"]})
        same_isp = OverlaySolution.from_assignments(colored_tiny, {demand.key: ["r1", "r3"]})
        diverse_success = isp_outage_success_probability(
            colored_tiny, diverse, demand, registry
        )
        same_success = isp_outage_success_probability(
            colored_tiny, same_isp, demand, registry
        )
        assert diverse_success > same_success


class TestSummary:
    def test_summary_without_registry(self, colored_tiny):
        solution = OverlaySolution.from_assignments(
            colored_tiny, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1", "r2"]}
        )
        summary = solution_reliability_summary(colored_tiny, solution)
        assert summary["num_demands"] == 2
        assert 0.0 <= summary["min_success"] <= summary["mean_success"] <= 1.0
        assert "mean_success_with_outages" not in summary

    def test_summary_with_registry_adds_outage_metrics(self, colored_tiny):
        registry = ISPRegistry()
        registry.add_many([ISP("ispA", 0.1), ISP("ispB", 0.1)])
        solution = OverlaySolution.from_assignments(
            colored_tiny, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r2"]}
        )
        summary = solution_reliability_summary(colored_tiny, solution, registry)
        assert "mean_success_with_outages" in summary
        assert summary["mean_success_with_outages"] <= summary["mean_success"] + 1e-12
        assert 0.0 <= summary["min_success_worst_single_outage"] <= 1.0
