"""Tests for the analysis helpers (repro.analysis)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    audit_solution,
    check_paper_guarantees,
    compare_designs,
    cost_breakdown,
    cost_ratio,
    format_csv,
    format_table,
    reliability_metrics,
    run_seed_sweep,
    run_size_sweep,
)
from repro.analysis.tables import summarize_series
from repro.baselines import greedy_design
from repro.core.algorithm import DesignParameters, design_overlay
from repro.core.solution import OverlaySolution
from repro.workloads.random_instances import RandomInstanceConfig, random_problem


class TestAudit:
    def test_audit_of_full_greedy_solution(self, tiny_problem):
        solution = greedy_design(tiny_problem)
        audit = audit_solution(tiny_problem, solution)
        assert audit.min_weight_fraction >= 1.0 - 1e-9
        assert audit.max_fanout_factor <= 1.0 + 1e-9
        assert audit.unserved_demands == 0
        assert audit.color_violations == 0
        summary = audit.summary()
        assert set(summary) >= {"min_weight_fraction", "max_fanout_factor", "unserved_demands"}

    def test_audit_detects_shortfall_and_overload(self, tiny_problem):
        overload = OverlaySolution.from_assignments(
            tiny_problem,
            {("d1", "s"): ["r2", "r3"], ("d2", "s"): ["r2", "r3"]},
        )
        audit = audit_solution(tiny_problem, overload)
        assert audit.fanout_factor["r2"] == pytest.approx(1.0)
        empty = OverlaySolution.from_assignments(tiny_problem, {})
        audit_empty = audit_solution(tiny_problem, empty)
        assert audit_empty.unserved_demands == 2
        assert audit_empty.min_weight_fraction == 0.0

    def test_arc_capacity_factor_measured(self):
        from repro.core.problem import OverlayDesignProblem

        problem = OverlayDesignProblem()
        problem.add_stream("a")
        problem.add_stream("b")
        problem.add_reflector("r", cost=1.0, fanout=4)
        problem.add_sink("d")
        problem.add_stream_edge("a", "r", 0.01, 0.1)
        problem.add_stream_edge("b", "r", 0.01, 0.1)
        problem.add_delivery_edge("r", "d", 0.02, 0.1, capacity=1.0)
        problem.add_demand("d", "a", 0.9)
        problem.add_demand("d", "b", 0.9)
        solution = OverlaySolution.from_assignments(
            problem, {("d", "a"): ["r"], ("d", "b"): ["r"]}
        )
        audit = audit_solution(problem, solution)
        assert audit.max_arc_capacity_factor == pytest.approx(2.0)

    def test_guarantee_checks_pass_for_paper_run(self, small_random_problem):
        report = design_overlay(small_random_problem, DesignParameters(seed=0))
        checks = check_paper_guarantees(small_random_problem, report)
        names = {check.name for check in checks}
        assert {"weight >= W/4", "fanout <= 4F", "cost <= 2 c log n * OPT_LP"} <= names
        assert all(check.holds for check in checks)


class TestMetrics:
    def test_cost_ratio_edge_cases(self):
        assert cost_ratio(10.0, 5.0) == 2.0
        assert cost_ratio(0.0, 0.0) == 1.0
        assert cost_ratio(3.0, 0.0) == float("inf")

    def test_cost_breakdown_sums(self, tiny_problem):
        solution = greedy_design(tiny_problem)
        breakdown = cost_breakdown(solution)
        assert breakdown["total_cost"] == pytest.approx(
            breakdown["reflector_cost"]
            + breakdown["stream_delivery_cost"]
            + breakdown["assignment_cost"]
        )

    def test_reliability_metrics(self, tiny_problem):
        solution = greedy_design(tiny_problem)
        metrics = reliability_metrics(tiny_problem, solution)
        assert 0.0 <= metrics["min_success"] <= metrics["mean_success"] <= 1.0
        assert metrics["fraction_meeting_threshold"] == 1.0
        assert metrics["mean_paths_per_demand"] >= 1.0

    def test_compare_designs_rows(self, tiny_problem):
        designs = {
            "greedy": greedy_design(tiny_problem),
            "empty": OverlaySolution.from_assignments(tiny_problem, {}),
        }
        rows = compare_designs(tiny_problem, designs, lower_bound=1.0)
        assert len(rows) == 2
        greedy_row = next(row for row in rows if row["design"] == "greedy")
        empty_row = next(row for row in rows if row["design"] == "empty")
        assert greedy_row["cost_ratio"] > 1.0
        assert empty_row["unserved_demands"] == 2

    def test_compare_designs_extra_metrics(self, tiny_problem):
        rows = compare_designs(
            tiny_problem,
            {"greedy": greedy_design(tiny_problem)},
            extra_metrics={"reflectors": lambda p, s: float(len(s.built_reflectors))},
        )
        assert rows[0]["reflectors"] >= 1.0


class TestTables:
    ROWS = [
        {"name": "a", "value": 1.23456, "count": 3},
        {"name": "bb", "value": 7.0, "count": 10},
    ]

    def test_format_table_alignment(self):
        text = format_table(self.ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 2 + 1 + len(self.ROWS)

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_table_column_subset(self):
        text = format_table(self.ROWS, columns=["name"])
        assert "value" not in text

    def test_format_csv(self):
        csv_text = format_csv(self.ROWS)
        lines = csv_text.splitlines()
        assert lines[0] == "name,value,count"
        assert lines[1].startswith("a,")
        assert format_csv([]) == ""

    def test_summarize_series(self):
        summary = summarize_series("x", [1.0, 2.0, 3.0])
        assert summary["min"] == 1.0 and summary["max"] == 3.0 and summary["mean"] == 2.0
        assert summarize_series("empty", [])["count"] == 0


class TestSweeps:
    def test_seed_sweep(self):
        config = RandomInstanceConfig(num_streams=1, num_reflectors=4, num_sinks=4)
        result = run_seed_sweep(
            lambda seed: random_problem(config, rng=seed), seeds=[0, 1]
        )
        assert len(result.rows) == 2
        assert all(row["cost_ratio"] > 0 for row in result.rows)
        aggregate = result.aggregate("cost_ratio")
        assert aggregate["count"] == 2
        assert aggregate["min"] <= aggregate["mean"] <= aggregate["max"]

    def test_size_sweep_records_size_product(self):
        result = run_size_sweep(sizes=[(1, 4, 4), (1, 5, 6)], seeds=[0])
        assert len(result.rows) == 2
        assert result.rows[0]["size_product"] == 16
        assert result.rows[1]["size_product"] == 30
        assert (result.column("demands") > 0).all()

    def test_aggregate_of_missing_metric(self):
        result = run_size_sweep(sizes=[(1, 4, 4)], seeds=[0])
        assert result.aggregate("not-a-metric")["count"] == 0
