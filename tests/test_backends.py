"""Tests for the registered solver-backend layer (repro.lp.backends)."""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.lp import (
    LinearProgram,
    LPStatus,
    SolveOptions,
    SolverBackend,
    SolverError,
    available_backend_names,
    backend_names,
    get_backend,
    registered_backends,
    solve_compiled,
    solve_lp,
)

try:
    import gurobipy  # noqa: F401

    GUROBI_INSTALLED = True
except ImportError:
    GUROBI_INSTALLED = False


def _small_lp() -> LinearProgram:
    # min x + 2y  s.t.  x + y >= 1, 0 <= x,y <= 1  ->  optimum 1 at (1, 0).
    model = LinearProgram()
    x = model.add_variable("x", lower=0.0, upper=1.0)
    y = model.add_variable("y", lower=0.0, upper=1.0)
    model.add_constraint(x + y >= 1.0)
    model.set_objective(x + 2.0 * y)
    return model


def _fractional_lp() -> LinearProgram:
    # min x + y  s.t.  2x + 2y >= 3, 0 <= x,y <= 1: LP optimum 1.5 is
    # fractional; the integer optimum is 2 (e.g. x = y = 1).
    model = LinearProgram()
    x = model.add_variable("x", lower=0.0, upper=1.0)
    y = model.add_variable("y", lower=0.0, upper=1.0)
    model.add_constraint(2.0 * x + 2.0 * y >= 3.0)
    model.set_objective(x + y)
    return model


class TestRegistry:
    def test_standard_backends_registered(self):
        names = backend_names()
        assert names[:2] == ["highs", "highs-mip"]
        assert "gurobi" in names

    def test_scipy_backends_always_available(self):
        available = available_backend_names()
        assert "highs" in available
        assert "highs-mip" in available

    def test_registered_backends_implement_protocol(self):
        for backend in registered_backends():
            assert isinstance(backend, SolverBackend)
            assert isinstance(backend.available(), bool)

    def test_unknown_backend_raises_solver_error_naming_installed(self):
        with pytest.raises(SolverError, match="installed backends") as excinfo:
            get_backend("cplex")
        for name in available_backend_names():
            assert name in str(excinfo.value)

    def test_docs_name_only_registered_backends(self):
        """Registry-completeness guard: every backend named in docs/solvers.md
        exists in code, and every registered backend is documented."""
        doc = Path(__file__).resolve().parent.parent / "docs" / "solvers.md"
        table_names = re.findall(r"^\| `([a-z0-9-]+)` \|", doc.read_text(), re.MULTILINE)
        assert table_names, "docs/solvers.md backend table not found"
        assert set(table_names) == set(backend_names())


class TestHighsBackend:
    def test_solves_lp(self):
        solution = solve_lp(_small_lp(), "highs")
        assert solution.is_optimal
        assert solution.backend == "highs"
        assert solution.objective == pytest.approx(1.0)

    def test_rejects_integrality(self):
        compiled = _fractional_lp().compile()
        options = SolveOptions(integrality=np.ones(2, dtype=np.int8))
        with pytest.raises(SolverError, match="pure LPs only"):
            solve_compiled(compiled, "highs", options=options)

    def test_accepts_and_ignores_warm_start(self):
        cold = solve_lp(_small_lp(), "highs")
        warm = solve_lp(
            _small_lp(), "highs", options=SolveOptions(warm_start=np.array([0.0, 1.0]))
        )
        assert warm.objective == cold.objective
        assert np.array_equal(warm.values, cold.values)


class TestHighsMIPBackend:
    def test_solves_pure_lp_like_highs(self):
        lp = solve_lp(_fractional_lp(), "highs")
        mip = solve_lp(_fractional_lp(), "highs-mip")
        assert mip.is_optimal
        assert mip.backend == "highs-mip"
        assert mip.objective == pytest.approx(lp.objective)

    def test_integrality_closes_the_gap(self):
        options = SolveOptions(integrality=np.ones(2, dtype=np.int8))
        solution = solve_lp(_fractional_lp(), "highs-mip", options=options)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(2.0)
        assert np.allclose(solution.values, np.round(solution.values))

    def test_surfaces_mip_diagnostics(self):
        options = SolveOptions(integrality=np.ones(2, dtype=np.int8))
        solution = solve_lp(_fractional_lp(), "highs-mip", options=options)
        assert solution.mip_gap is not None and solution.mip_gap <= 1e-6
        assert solution.mip_dual_bound == pytest.approx(2.0)
        assert solution.mip_node_count is not None

    def test_mip_gap_limit_accepted(self):
        options = SolveOptions(
            integrality=np.ones(2, dtype=np.int8), mip_gap=0.5, time_limit=10.0
        )
        solution = solve_lp(_fractional_lp(), "highs-mip", options=options)
        assert solution.has_solution
        assert solution.objective == pytest.approx(2.0)

    def test_infeasible_returns_status(self):
        model = LinearProgram()
        x = model.add_variable("x", lower=0.0, upper=1.0)
        model.add_constraint(x >= 2.0)
        model.set_objective(x + 0.0)
        solution = solve_lp(model, "highs-mip")
        assert solution.status is LPStatus.INFEASIBLE


class TestStatusMapping:
    def test_infeasible_message_names_constraint_families(self):
        from repro.lp import Sense, SparseLPBuilder

        builder = SparseLPBuilder(name="infeasible-lp")
        x = builder.add_variables(1, lower=0.0, upper=1.0, name="x")
        builder.add_objective_terms(x, np.ones(1))
        builder.add_block(
            "(5) weight coverage",
            rows=np.array([0]),
            cols=x,
            values=np.array([1.0]),
            rhs=np.array([2.0]),
            sense=Sense.GE,
        )
        compiled, stats = builder.build()
        solution = solve_compiled(compiled, "highs", stats=stats)
        assert solution.status is LPStatus.INFEASIBLE
        assert "(5) weight coverage" in solution.message
        assert "1 rows" in solution.message


class TestGurobiBackend:
    @pytest.mark.skipif(
        GUROBI_INSTALLED, reason="gurobipy installed; absence path not testable"
    )
    def test_reports_unavailable_and_raises_gracefully(self):
        backend = get_backend("gurobi")
        assert backend.available() is False
        assert "gurobi" not in available_backend_names()
        with pytest.raises(SolverError, match="gurobipy"):
            backend.solve(_small_lp().compile(), SolveOptions())

    @pytest.mark.skipif(
        not GUROBI_INSTALLED, reason="gurobipy not installed (optional backend)"
    )
    def test_solves_lp_and_mip_when_installed(self):
        assert "gurobi" in available_backend_names()
        solution = solve_lp(_small_lp(), "gurobi")
        assert solution.is_optimal
        assert solution.objective == pytest.approx(1.0)
        options = SolveOptions(
            integrality=np.ones(2, dtype=np.int8),
            warm_start=np.array([1.0, 1.0]),
        )
        mip = solve_lp(_fractional_lp(), "gurobi", options=options)
        assert mip.is_optimal
        assert mip.objective == pytest.approx(2.0)


class TestParameterThreading:
    def test_design_parameters_validate_solver_backend(self):
        from repro.core.algorithm import DesignParameters

        with pytest.raises(ValueError, match="solver_backend"):
            DesignParameters(solver_backend="cplex")
        assert DesignParameters(solver_backend="highs-mip").solver_backend == "highs-mip"

    def test_solver_backend_round_trips_through_serde(self):
        from repro.api.types import parameters_from_dict, parameters_to_dict
        from repro.core.algorithm import DesignParameters

        parameters = DesignParameters(solver_backend="highs-mip")
        document = parameters_to_dict(parameters)
        assert document["solver_backend"] == "highs-mip"
        assert parameters_from_dict(document).solver_backend == "highs-mip"
        assert parameters_from_dict({}).solver_backend == "highs"

    def test_formulation_cache_key_separates_solver_backends(self):
        from repro.core.algorithm import DesignParameters
        from repro.serve.cache import formulation_key

        base = formulation_key("digest", DesignParameters())
        mip = formulation_key("digest", DesignParameters(solver_backend="highs-mip"))
        assert base != mip

    def test_pipeline_solves_on_requested_backend(self):
        from repro.api import DesignRequest, get_designer
        from repro.core.algorithm import DesignParameters
        from repro.workloads.tiny import build_tiny_problem

        problem = build_tiny_problem()
        default = get_designer("spaa03").design(
            DesignRequest(problem=problem, parameters=DesignParameters(seed=7))
        )
        via_mip = get_designer("spaa03").design(
            DesignRequest(
                problem=problem,
                parameters=DesignParameters(seed=7, solver_backend="highs-mip"),
            )
        )
        assert via_mip.metadata["solver_backend"] == "highs-mip"
        assert default.metadata["solver_backend"] == "highs"
        assert via_mip.lower_bound == pytest.approx(default.lower_bound)
        assert via_mip.solution.total_cost() == pytest.approx(default.solution.total_cost())

    def test_sharded_requests_inherit_solver_backend(self):
        from repro.api.types import DesignRequest, parameters_from_dict, parameters_to_dict
        from repro.core.algorithm import DesignParameters
        from repro.workloads.tiny import build_tiny_problem

        # The sharded pipeline rebuilds per-shard parameters through the
        # serde layer; the round trip preserving the field is exactly what
        # threads the backend choice into every shard.
        request = DesignRequest(
            problem=build_tiny_problem(),
            parameters=DesignParameters(solver_backend="highs-mip"),
        )
        document = parameters_to_dict(request.parameters)
        assert parameters_from_dict(dict(document)).solver_backend == "highs-mip"
