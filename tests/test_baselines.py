"""Tests for the baseline designs (repro.baselines)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    greedy_design,
    lp_lower_bound,
    naive_quality_first_design,
    random_design,
    single_tree_design,
)
from repro.core.algorithm import fractional_lower_bound
from repro.core.problem import OverlayDesignProblem


class TestGreedy:
    def test_meets_weight_requirements_when_capacity_allows(self, tiny_problem):
        solution = greedy_design(tiny_problem)
        for demand in tiny_problem.demands:
            assert solution.weight_satisfaction(demand) >= 1.0 - 1e-9

    def test_respects_fanout(self, small_random_problem):
        solution = greedy_design(small_random_problem)
        assert solution.max_fanout_factor() <= 1.0 + 1e-9

    def test_cost_at_least_lp_bound(self, small_random_problem):
        bound = fractional_lower_bound(small_random_problem)
        solution = greedy_design(small_random_problem)
        assert solution.total_cost() >= bound - 1e-6

    def test_prefers_cheap_reflectors(self):
        """With two identical reflectors differing only in cost, greedy picks the cheap one."""
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("cheap", cost=1.0, fanout=4)
        problem.add_reflector("pricey", cost=100.0, fanout=4)
        problem.add_sink("d")
        for name in ("cheap", "pricey"):
            problem.add_stream_edge("s", name, 0.01, 0.1)
            problem.add_delivery_edge(name, "d", 0.02, 0.1)
        # One ~3% lossy path is enough for a 0.9 requirement, so a single
        # reflector suffices and greedy must pick the cheap one.
        problem.add_demand("d", "s", 0.9)
        solution = greedy_design(problem)
        assert solution.built_reflectors == {"cheap"}

    def test_fanout_slack_allows_more_assignments(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=1)
        problem.add_sink("d1")
        problem.add_sink("d2")
        problem.add_stream_edge("s", "r", 0.01, 0.1)
        problem.add_delivery_edge("r", "d1", 0.02, 0.1)
        problem.add_delivery_edge("r", "d2", 0.02, 0.1)
        problem.add_demand("d1", "s", 0.9)
        problem.add_demand("d2", "s", 0.9)
        strict = greedy_design(problem, fanout_slack=1.0)
        relaxed = greedy_design(problem, fanout_slack=2.0)
        assert len(strict.unserved_demands()) == 1
        assert len(relaxed.unserved_demands()) == 0


class TestNaive:
    def test_picks_most_reliable_first(self, tiny_problem):
        solution = naive_quality_first_design(tiny_problem)
        demand = tiny_problem.demands[0]
        serving = solution.reflectors_serving(demand)
        assert serving[0] == "r1"  # lowest two-hop loss for d1

    def test_meets_requirements(self, small_random_problem):
        solution = naive_quality_first_design(small_random_problem)
        unmet = [
            d for d in small_random_problem.demands if solution.weight_satisfaction(d) < 1.0 - 1e-9
        ]
        assert len(unmet) <= small_random_problem.num_demands // 4

    def test_costs_more_than_greedy_on_average(self):
        """Quality-first ignores cost, so across seeds it should not beat greedy."""
        from repro.workloads.random_instances import RandomInstanceConfig, random_problem

        greedy_total, naive_total = 0.0, 0.0
        for seed in range(5):
            problem = random_problem(RandomInstanceConfig(num_reflectors=8, num_sinks=12), rng=seed)
            greedy_total += greedy_design(problem).total_cost()
            naive_total += naive_quality_first_design(problem).total_cost()
        assert naive_total >= greedy_total


class TestRandomDesign:
    def test_deterministic_with_seed(self, small_random_problem):
        a = random_design(small_random_problem, rng=3)
        b = random_design(small_random_problem, rng=3)
        assert a.assignments == b.assignments

    def test_respects_fanout(self, small_random_problem):
        solution = random_design(small_random_problem, rng=1)
        assert solution.max_fanout_factor() <= 1.0 + 1e-9

    def test_serves_demands(self, small_random_problem):
        solution = random_design(small_random_problem, rng=2)
        assert len(solution.unserved_demands()) == 0


class TestSingleTree:
    def test_exactly_one_reflector_per_demand(self, small_random_problem):
        solution = single_tree_design(small_random_problem)
        for demand in small_random_problem.demands:
            assert len(solution.reflectors_serving(demand)) <= 1

    def test_no_redundancy_means_lower_reliability(self, tiny_problem):
        tree = single_tree_design(tiny_problem)
        redundant = greedy_design(tiny_problem)
        for demand in tiny_problem.demands:
            assert tree.success_probability(demand) <= redundant.success_probability(
                demand
            ) + 1e-12

    def test_prefer_cheap_option(self, tiny_problem):
        cheap = single_tree_design(tiny_problem, prefer_cheap=True)
        assert cheap.total_cost() <= single_tree_design(tiny_problem).total_cost() + 1e-9

    def test_respects_fanout(self, small_random_problem):
        solution = single_tree_design(small_random_problem)
        assert solution.max_fanout_factor() <= 1.0 + 1e-9


class TestLpBound:
    def test_matches_core_helper(self, tiny_problem):
        assert lp_lower_bound(tiny_problem) == pytest.approx(
            fractional_lower_bound(tiny_problem), rel=1e-9
        )

    def test_lower_than_every_feasible_design(self, small_random_problem):
        bound = lp_lower_bound(small_random_problem)
        for solution in (
            greedy_design(small_random_problem),
            naive_quality_first_design(small_random_problem),
            random_design(small_random_problem, rng=0),
        ):
            assert solution.total_cost() >= bound - 1e-6
