"""Tests for the Section-3 randomized rounding (repro.core.rounding)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.formulation import build_formulation
from repro.core.rounding import (
    RoundingParameters,
    audit_rounding,
    effective_multiplier,
    round_solution,
    round_solution_with_retries,
)


@pytest.fixture
def fractional(tiny_problem):
    formulation = build_formulation(tiny_problem)
    return formulation.fractional_solution(formulation.solve()).support()


class TestMultiplier:
    def test_natural_log_used(self):
        assert effective_multiplier(8.0, 100) == pytest.approx(8.0 * math.log(100))

    def test_clamped_at_one(self):
        assert effective_multiplier(0.1, 2) == 1.0

    def test_tiny_instances_clamped(self):
        # n = 1 would give log 1 = 0; the implementation clamps n at 2.
        assert effective_multiplier(8.0, 1) == pytest.approx(8.0 * math.log(2))

    def test_invalid_demand_count(self):
        with pytest.raises(ValueError):
            effective_multiplier(8.0, 0)

    def test_parameters_paper_defaults(self):
        params = RoundingParameters.paper_defaults()
        assert params.c == pytest.approx(64.0)
        assert params.delta == pytest.approx(0.25)
        assert params.multiplier(10) == pytest.approx(64.0 * math.log(10))


class TestRoundingStructure:
    def test_values_are_binary_or_allowed_fractions(self, tiny_problem, fractional):
        params = RoundingParameters(c=8.0, seed=3)
        rounded = round_solution(tiny_problem, fractional, params)
        assert set(rounded.z.values()) <= {0, 1}
        assert set(rounded.y.values()) <= {0, 1}
        multiplier = rounded.multiplier
        for key, value in rounded.x.items():
            original = fractional.x[key]
            assert value == pytest.approx(original) or value == pytest.approx(1.0 / multiplier)

    def test_x_support_implies_y_and_z(self, tiny_problem, fractional):
        rounded = round_solution(tiny_problem, fractional, RoundingParameters(seed=5))
        for reflector, (sink, stream) in rounded.x:
            assert rounded.z.get(reflector) == 1
            assert rounded.y.get((stream, reflector)) == 1

    def test_scaled_values_capped_at_one(self, tiny_problem, fractional):
        rounded = round_solution(tiny_problem, fractional, RoundingParameters(c=64.0, seed=1))
        assert all(value <= 1.0 + 1e-12 for value in rounded.scaled_z.values())
        assert all(value <= 1.0 + 1e-12 for value in rounded.scaled_y.values())

    def test_large_c_keeps_fractional_x(self, tiny_problem, fractional):
        """With a huge multiplier all z_dot/y_dot saturate so x_bar = x_hat exactly."""
        rounded = round_solution(tiny_problem, fractional, RoundingParameters(c=10_000.0, seed=0))
        for key, value in fractional.x.items():
            if value > 1e-9:
                assert rounded.x[key] == pytest.approx(value)

    def test_deterministic_given_seed(self, tiny_problem, fractional):
        a = round_solution(tiny_problem, fractional, RoundingParameters(c=8.0, seed=42))
        b = round_solution(tiny_problem, fractional, RoundingParameters(c=8.0, seed=42))
        assert a.z == b.z and a.y == b.y and a.x == b.x

    def test_different_seeds_can_differ(self, tiny_problem):
        """With genuinely fractional inflated values the draws are random.

        A hand-built fractional solution avoids the (legitimate) case where the
        LP solution saturates every inflated variable and the rounding becomes
        deterministic.
        """
        from repro.core.lp_solution import FractionalSolution

        fractional = FractionalSolution(
            z={r: 0.5 for r in tiny_problem.reflectors},
            y={("s", r): 0.5 for r in tiny_problem.reflectors},
            x={
                (r, d.key): 0.45
                for d in tiny_problem.demands
                for r in tiny_problem.candidate_reflectors(d)
            },
            objective=1.0,
        )
        # c = 0.3 keeps the multiplier at its clamp (1.0), so z_dot = 0.5 and the
        # Bernoulli draws genuinely differ across seeds.
        draws = [
            round_solution(tiny_problem, fractional, RoundingParameters(c=0.3, seed=s))
            for s in range(8)
        ]
        assert len({tuple(sorted(d.z.items())) for d in draws}) > 1

    def test_explicit_rng_overrides_seed(self, tiny_problem, fractional):
        rng = np.random.default_rng(9)
        a = round_solution(tiny_problem, fractional, RoundingParameters(c=8.0, seed=1), rng)
        rng = np.random.default_rng(9)
        b = round_solution(tiny_problem, fractional, RoundingParameters(c=8.0, seed=2), rng)
        assert a.x == b.x


class TestRoundingGuarantees:
    def test_cost_at_most_multiplier_times_lp_in_expectation(self, small_random_problem):
        """Lemma 4.1: E[cost after rounding] <= c log n * LP optimum (checked by sampling)."""
        formulation = build_formulation(small_random_problem)
        fractional = formulation.fractional_solution(formulation.solve()).support()
        params = RoundingParameters(c=4.0)
        rng = np.random.default_rng(0)
        costs = [
            round_solution(small_random_problem, fractional, params, rng).cost(
                small_random_problem
            )
            for _ in range(40)
        ]
        multiplier = effective_multiplier(params.c, small_random_problem.num_demands)
        assert np.mean(costs) <= multiplier * fractional.objective * 1.1  # 10% sampling slack

    def test_paper_constants_satisfy_constraints_whp(self, small_random_problem):
        """With c = 64 (paper constants) a single draw almost always passes the audit."""
        formulation = build_formulation(small_random_problem)
        fractional = formulation.fractional_solution(formulation.solve()).support()
        params = RoundingParameters.paper_defaults()
        rng = np.random.default_rng(2)
        successes = 0
        for _ in range(10):
            rounded = round_solution(small_random_problem, fractional, params, rng)
            audit = audit_rounding(small_random_problem, rounded)
            if audit.acceptable(params.delta, fanout_slack=2.0):
                successes += 1
        assert successes >= 8

    def test_audit_weight_fraction_definition(self, tiny_problem, fractional):
        rounded = round_solution(tiny_problem, fractional, RoundingParameters(c=10_000.0, seed=0))
        audit = audit_rounding(tiny_problem, rounded)
        for demand in tiny_problem.demands:
            expected = rounded.delivered_weight(tiny_problem, demand) / tiny_problem.demand_weight(
                demand
            )
            assert audit.weight_fraction[demand.key] == pytest.approx(expected)
        # With x_bar = x_hat the LP constraint guarantees full weight.
        assert audit.min_weight_fraction >= 1.0 - 1e-6

    def test_retries_return_acceptable_draw(self, small_random_problem):
        formulation = build_formulation(small_random_problem)
        fractional = formulation.fractional_solution(formulation.solve()).support()
        rounded, audit, attempts = round_solution_with_retries(
            small_random_problem,
            fractional,
            RoundingParameters(c=8.0, delta=0.5, seed=4),
            max_attempts=30,
        )
        assert attempts <= 30
        assert audit.min_weight_fraction >= 0.5 - 1e-9 or attempts == 30

    def test_retry_fallback_returns_best_seen(self, tiny_problem, fractional):
        """Even when nothing passes, the fallback must return a usable draw."""
        rounded, audit, attempts = round_solution_with_retries(
            tiny_problem,
            fractional,
            RoundingParameters(c=0.01, delta=0.01, seed=0),
            max_attempts=3,
        )
        assert attempts == 3
        assert isinstance(audit.min_weight_fraction, float)
        assert rounded.multiplier >= 1.0
