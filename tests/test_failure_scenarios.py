"""Failure events, correlated samplers and the scenario catalogue.

Includes the *golden* regression tests for the fixed-seed samplers: the exact
event windows are pinned so a silent change to the correlated-failure models
(or to the truncation semantics at the session boundary) cannot slip through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import greedy_design
from repro.network.isp import ISP, ISPRegistry
from repro.simulation import (
    FailureEvent,
    FailureSchedule,
    MonteCarloConfig,
    SimulationConfig,
    evaluate_design,
    failure_scenario_names,
    get_failure_scenario,
    realize_scenario,
    run_monte_carlo,
    sample_flash_crowd_congestion,
    sample_isp_outage_schedule,
    sample_regional_outage_schedule,
    simulate_solution,
)
from repro.network.loss import BernoulliLossModel, GilbertElliottLossModel
from repro.core.problem import OverlayDesignProblem
from repro.simulation.scenarios import hot_sinks, infer_clusters
from repro.workloads import AkamaiLikeConfig, generate_akamai_like_topology


@pytest.fixture(scope="module")
def akamai():
    topology, _registry = generate_akamai_like_topology(AkamaiLikeConfig(), rng=0)
    problem = topology.to_problem()
    return problem, greedy_design(problem)


class TestFailureEvent:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            FailureEvent("weird", "x", 0, 10)
        with pytest.raises(ValueError):
            FailureEvent("isp_outage", "x", 10, 5)

    def test_severity_rules(self):
        with pytest.raises(ValueError):
            FailureEvent("isp_outage", "x", 0, 10, severity=0.5)
        with pytest.raises(ValueError):
            FailureEvent("link_congestion", "x", 0, 10, severity=0.0)
        with pytest.raises(ValueError):
            FailureEvent("link_congestion", "x", 0, 10, severity=1.5)
        # Congestion with the outage-shaped default (1.0) is a silent
        # blackout, not congestion -- rejected; use node_outage instead.
        with pytest.raises(ValueError, match="node_outage"):
            FailureEvent("link_congestion", "x", 0, 10)
        assert FailureEvent("link_congestion", "x", 0, 10, severity=0.3).severity == 0.3

    def test_node_outage_matches_either_endpoint(self):
        event = FailureEvent("node_outage", "edge1", 0, 10)
        assert event.matches_link("r1", "edge1", {})
        assert event.matches_link("edge1", "r1", {})
        assert not event.matches_link("r1", "edge2", {})

    def test_congestion_matches_head_only(self):
        event = FailureEvent("link_congestion", "edge1", 0, 10, severity=0.3)
        assert event.matches_link("r1", "edge1", {})
        assert not event.matches_link("edge1", "r1", {})

    def test_event_outlasting_session_is_truncated_not_dropped(self):
        """Golden: an interval ending after num_packets applies to its prefix."""
        event = FailureEvent("isp_outage", "ispA", 900, 1200)
        mask = event.window_mask(1000)
        assert mask.sum() == 100
        assert mask[900:].all() and not mask[:900].any()


class TestFailureSchedule:
    def test_validate_rejects_event_beyond_session(self):
        schedule = FailureSchedule([FailureEvent("reflector_crash", "r1", 1000, 1200)])
        with pytest.raises(ValueError, match="silently never fire"):
            schedule.validate_for_session(1000)
        schedule.validate_for_session(1001)  # starts inside: fine

    def test_engines_reject_out_of_session_events(self, tiny_problem):
        from repro.core.solution import OverlaySolution

        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        schedule = FailureSchedule([FailureEvent("reflector_crash", "r1", 500, 600)])
        with pytest.raises(ValueError, match="silently never fire"):
            simulate_solution(
                tiny_problem,
                solution,
                SimulationConfig(num_packets=100, failures=schedule, seed=0),
            )
        with pytest.raises(ValueError, match="silently never fire"):
            run_monte_carlo(
                tiny_problem,
                solution,
                MonteCarloConfig(num_packets=100, trials=2, window=8, failures=schedule),
            )

    def test_link_loss_profile_combines_outage_and_congestion(self):
        schedule = FailureSchedule(
            [
                FailureEvent("node_outage", "edge1", 0, 4),
                FailureEvent("link_congestion", "edge1", 2, 8, severity=0.5),
                FailureEvent("link_congestion", "edge1", 6, 8, severity=0.5),
            ]
        )
        profile = schedule.link_loss_profile("r1", "edge1", 10)
        assert profile[:4].tolist() == [1.0] * 4  # outage dominates
        assert profile[4:6].tolist() == [0.5, 0.5]
        assert profile[6:8] == pytest.approx([0.75, 0.75])  # independent combine
        assert profile[8:].tolist() == [0.0, 0.0]
        assert schedule.link_loss_profile("r1", "edge2", 10) is None
        assert schedule.has_congestion()

    def test_outage_mask_ignores_congestion(self):
        schedule = FailureSchedule(
            [FailureEvent("link_congestion", "edge1", 0, 10, severity=0.9)]
        )
        assert not schedule.link_outage_mask("r1", "edge1", 10).any()


class TestGoldenSamplers:
    """Fixed-seed expected outage windows for the correlated samplers."""

    def test_isp_outage_schedule_golden(self):
        schedule = sample_isp_outage_schedule(
            ["ispA", "ispB", "ispC"], 1000, np.random.default_rng(7)
        )
        assert [(e.kind, e.target, e.start, e.end) for e in schedule.events] == [
            ("isp_outage", "ispC", 213, 465)
        ]
        # A quieter draw: no ISP fails.
        quiet = sample_isp_outage_schedule(
            ["ispA", "ispB", "ispC"], 1000, np.random.default_rng(42)
        )
        assert len(quiet) == 0

    def test_regional_outage_schedule_golden(self):
        schedule = sample_regional_outage_schedule(
            {"east": ["r1", "edge1"], "west": ["r2", "edge2"]},
            1000,
            np.random.default_rng(3),
        )
        assert [(e.kind, e.target, e.start, e.end) for e in schedule.events] == [
            ("node_outage", "r2", 59, 369),
            ("node_outage", "edge2", 59, 369),
        ]

    def test_flash_crowd_congestion_golden(self):
        schedule = sample_flash_crowd_congestion(
            ["edge1", "edge2"], 1000, np.random.default_rng(5), num_waves=2
        )
        events = [(e.kind, e.target, e.start, e.end) for e in schedule.events]
        assert events == [
            ("link_congestion", "edge1", 17, 266),
            ("link_congestion", "edge2", 17, 266),
            ("link_congestion", "edge1", 704, 833),
            ("link_congestion", "edge2", 704, 833),
        ]
        assert [e.severity for e in schedule.events] == pytest.approx(
            [0.353218, 0.305018, 0.325507, 0.330779], abs=1e-6
        )

    def test_isp_shock_raises_joint_failures(self):
        isps = [f"isp{i}" for i in range(4)]
        rng = np.random.default_rng(0)
        sizes = [
            len(sample_isp_outage_schedule(isps, 1000, rng, shock_probability=1.0))
            for _ in range(200)
        ]
        rng = np.random.default_rng(0)
        quiet = [
            len(sample_isp_outage_schedule(isps, 1000, rng, shock_probability=0.0))
            for _ in range(200)
        ]
        assert np.mean(sizes) > np.mean(quiet) + 1.0

    def test_registry_bridge(self):
        registry = ISPRegistry()
        registry.add_many([ISP("a", 0.1), ISP("b", 0.1)])
        schedule = registry.sample_outage_schedule(
            500, np.random.default_rng(1), outage_probability=1.0, shock_probability=0.0
        )
        assert {e.target for e in schedule.events} == {"a", "b"}
        for event in schedule.events:
            assert 0 <= event.start < event.end <= 500


class TestCatalogue:
    def test_builtin_names(self):
        names = failure_scenario_names()
        assert names[:5] == [
            "baseline",
            "isp-outage",
            "regional-failure",
            "flash-crowd",
            "bursty-links",
        ]
        # The shipped DSL scenario library auto-registers behind the built-ins.
        assert "targeted-attack-k2" in names
        assert "perfect-storm" in names

    def test_unknown_scenario_errors(self):
        with pytest.raises(KeyError, match="unknown failure scenario"):
            get_failure_scenario("nope")

    def test_realizations(self, akamai):
        problem, _solution = akamai
        for name in failure_scenario_names():
            realization = realize_scenario(name, problem, 800, np.random.default_rng(1))
            realization.failures.validate_for_session(800)
            if name in ("bursty-links", "perfect-storm"):
                assert isinstance(realization.loss_model, GilbertElliottLossModel)
            else:
                assert isinstance(realization.loss_model, BernoulliLossModel)
            if name == "flash-crowd":
                assert len(realization.failures) > 0
                assert realization.failures.has_congestion()

    def test_realization_deterministic(self, akamai):
        problem, _solution = akamai
        a = realize_scenario("isp-outage", problem, 800, np.random.default_rng(9))
        b = realize_scenario("isp-outage", problem, 800, np.random.default_rng(9))
        assert a.failures.events == b.failures.events

    def test_infer_clusters_and_hot_sinks(self, akamai):
        problem, _solution = akamai
        clusters = infer_clusters(problem)
        # Every akamai node is named <colo>-<machine>, so clusters group them.
        assert all(name.startswith("colo") for name in clusters)
        assert sum(len(nodes) for nodes in clusters.values()) == (
            problem.num_reflectors + problem.num_sinks
        )
        hot = hot_sinks(problem)
        assert hot and set(hot) <= set(problem.sinks)

    def test_infer_clusters_without_prefix_degrades_to_singletons(self):
        problem = OverlayDesignProblem(name="unstructured")
        problem.add_stream("stream0", bandwidth=1.0)
        for name in ("alpha", "beta", "gamma"):
            problem.add_reflector(name, cost=1.0, fanout=4)
            problem.add_stream_edge("stream0", name, 0.01, 1.0)
        problem.add_sink("delta")
        for name in ("alpha", "beta", "gamma"):
            problem.add_delivery_edge(name, "delta", 0.01, 1.0)
        problem.add_demand("delta", "stream0", 0.9)
        clusters = infer_clusters(problem)
        # No '-' anywhere: every node is its own singleton cluster.
        assert clusters == {
            "alpha": ["alpha"],
            "beta": ["beta"],
            "gamma": ["gamma"],
            "delta": ["delta"],
        }

    def test_infer_clusters_mixed_naming(self):
        problem = OverlayDesignProblem(name="mixed")
        problem.add_stream("stream0", bandwidth=1.0)
        # Multi-hyphen names split on the FIRST '-'; bare names are
        # singletons; a one-node cluster stays a valid cluster.
        for name in ("east-r0", "east-r1", "west-r0", "lonely"):
            problem.add_reflector(name, cost=1.0, fanout=4)
            problem.add_stream_edge("stream0", name, 0.01, 1.0)
        problem.add_sink("east-s-extra")
        for name in ("east-r0", "east-r1", "west-r0", "lonely"):
            problem.add_delivery_edge(name, "east-s-extra", 0.01, 1.0)
        problem.add_demand("east-s-extra", "stream0", 0.9)
        clusters = infer_clusters(problem)
        assert clusters == {
            "east": ["east-r0", "east-r1", "east-s-extra"],
            "west": ["west-r0"],
            "lonely": ["lonely"],
        }

    def test_hot_sinks_all_ties_break_by_name(self):
        problem = OverlayDesignProblem(name="ties")
        problem.add_stream("stream0", bandwidth=1.0)
        problem.add_reflector("r0", cost=1.0, fanout=16)
        problem.add_stream_edge("stream0", "r0", 0.01, 1.0)
        sinks = ["s-zeta", "s-alpha", "s-mid", "s-beta"]
        for sink in sinks:
            problem.add_sink(sink)
            problem.add_delivery_edge("r0", sink, 0.01, 1.0)
            problem.add_demand(sink, "stream0", 0.9)  # one demand each: all tied
        # fraction=0.5 of 4 sinks keeps 2; the tie breaks lexicographically,
        # deterministically -- not by insertion order.
        assert hot_sinks(problem, fraction=0.5) == ["s-alpha", "s-beta"]
        assert hot_sinks(problem, fraction=1.0) == sorted(sinks)


class TestEvaluateDesign:
    def test_full_catalogue_sweep(self, akamai):
        problem, solution = akamai
        results = evaluate_design(
            problem, solution, trials=6, num_packets=400, window=80, seed=0
        )
        assert sorted(results) == sorted(failure_scenario_names())
        for metrics in results.values():
            assert 0.0 <= metrics["mean_loss"] <= 1.0
            assert 0.0 <= metrics["fraction_meeting_threshold"] <= 1.0
            assert metrics["trials"] == 6

    def test_subset_and_determinism(self, akamai):
        problem, solution = akamai
        kwargs = dict(trials=5, num_packets=400, window=80, seed=3)
        once = evaluate_design(problem, solution, ("baseline", "flash-crowd"), **kwargs)
        again = evaluate_design(problem, solution, ("flash-crowd",), **kwargs)
        assert once["flash-crowd"] == again["flash-crowd"]

    def test_unknown_scenario_rejected(self, akamai):
        problem, solution = akamai
        with pytest.raises(KeyError):
            evaluate_design(problem, solution, ("nope",), trials=2, num_packets=100)

    def test_stress_scenarios_add_loss(self, akamai):
        problem, solution = akamai
        results = evaluate_design(
            problem, solution, trials=12, num_packets=800, window=80, seed=1
        )
        assert results["flash-crowd"]["mean_loss"] > results["baseline"]["mean_loss"]
