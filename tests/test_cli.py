"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.serialization import dump_problem, load_problem, load_solution
from repro.workloads.tiny import build_tiny_problem


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "problem.json"
    dump_problem(build_tiny_problem(), str(path))
    return str(path)


class TestGenerate:
    @pytest.mark.parametrize("workload", ["random", "akamai", "flash-crowd"])
    def test_generate_workloads(self, tmp_path, workload, capsys):
        out = tmp_path / f"{workload}.json"
        code = main(["generate", "--workload", workload, "--seed", "1", "--out", str(out)])
        assert code == 0
        problem = load_problem(str(out))
        assert problem.num_demands > 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_internet_scale_honours_sinks(self, tmp_path, capsys):
        out = tmp_path / "scale.json"
        code = main(
            [
                "generate",
                "--workload",
                "internet-scale",
                "--sinks",
                "120",
                "--seed",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        problem = load_problem(str(out))
        assert problem.num_sinks == 120
        assert problem.feasibility_report() == []


class TestDesignEvaluateSimulate:
    def test_design_writes_solution(self, problem_file, tmp_path, capsys):
        out = tmp_path / "design.json"
        code = main(
            [
                "design",
                "--problem",
                problem_file,
                "--out",
                str(out),
                "--seed",
                "3",
                "--repair",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "total_cost" in output
        problem = load_problem(problem_file)
        solution = load_solution(str(out), problem)
        assert solution.assignments

    def test_design_isp_diversity_flag(self, tmp_path, capsys):
        # Build a colored problem with enough ISPs and mild thresholds so the
        # diversity-constrained LP stays feasible.
        from repro.workloads import RandomInstanceConfig, random_problem

        problem = random_problem(
            RandomInstanceConfig(
                num_colors=3,
                num_reflectors=8,
                success_threshold_range=(0.9, 0.96),
            ),
            rng=0,
        )
        problem_path = tmp_path / "colored.json"
        dump_problem(problem, str(problem_path))
        out = tmp_path / "colored-design.json"
        code = main(
            [
                "design",
                "--problem",
                str(problem_path),
                "--out",
                str(out),
                "--isp-diversity",
                "--repair",
            ]
        )
        assert code == 0
        assert out.exists()

    def test_design_reports_infeasible_problem(self, tmp_path, capsys):
        from repro.core.problem import OverlayDesignProblem

        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=1)
        problem.add_sink("d")
        problem.add_stream_edge("s", "r", 0.5, 1.0)
        problem.add_delivery_edge("r", "d", 0.5, 1.0)
        problem.add_demand("d", "s", 0.9999)
        path = tmp_path / "bad.json"
        dump_problem(problem, str(path))
        code = main(["design", "--problem", str(path), "--out", str(tmp_path / "x.json")])
        assert code == 2
        assert "cannot be satisfied" in capsys.readouterr().err

    def test_evaluate_and_simulate(self, problem_file, tmp_path, capsys):
        design_path = tmp_path / "design.json"
        assert main(["design", "--problem", problem_file, "--out", str(design_path), "--repair"]) == 0
        capsys.readouterr()

        assert main(["evaluate", "--problem", problem_file, "--solution", str(design_path)]) == 0
        evaluation = capsys.readouterr().out
        assert "min_weight_fraction" in evaluation

        assert (
            main(
                [
                    "simulate",
                    "--problem",
                    problem_file,
                    "--solution",
                    str(design_path),
                    "--packets",
                    "2000",
                ]
            )
            == 0
        )
        simulation = capsys.readouterr().out
        assert "loss_rate" in simulation
        assert "mean loss" in simulation

    def test_compare(self, problem_file, capsys):
        assert main(["compare", "--problem", problem_file, "--seed", "1"]) == 0
        output = capsys.readouterr().out
        for name in ("spaa03+repair", "greedy", "single-tree", "random"):
            assert name in output

    def test_design_with_baseline_strategy(self, problem_file, tmp_path, capsys):
        out = tmp_path / "greedy.json"
        code = main(
            ["design", "--problem", problem_file, "--strategy", "greedy", "--out", str(out)]
        )
        assert code == 0
        assert "total_cost" in capsys.readouterr().out
        problem = load_problem(problem_file)
        assert load_solution(str(out), problem).assignments

    def test_design_unknown_strategy_errors(self, problem_file, capsys):
        assert main(["design", "--problem", problem_file, "--strategy", "nope"]) == 2
        assert "unknown designer" in capsys.readouterr().err

    def test_design_baseline_strategy_rejects_pipeline_flags(self, problem_file, capsys):
        code = main(["design", "--problem", problem_file, "--strategy", "greedy", "--repair"])
        assert code == 2
        assert "pipeline-only" in capsys.readouterr().err
        code = main(
            ["design", "--problem", problem_file, "--strategy", "random", "--multiplier", "16"]
        )
        assert code == 2
        assert "--multiplier" in capsys.readouterr().err

    def test_design_bound_only_strategy_refuses_out(self, problem_file, tmp_path, capsys):
        out = tmp_path / "bound.json"
        code = main(
            ["design", "--problem", problem_file, "--strategy", "lp-bound", "--out", str(out)]
        )
        assert code == 2
        assert "no integral design" in capsys.readouterr().err
        assert not out.exists()

    def test_compare_with_baseline_reference(self, problem_file, capsys):
        assert main(["compare", "--problem", problem_file, "--strategy", "greedy"]) == 0
        output = capsys.readouterr().out
        # A baseline reference is not labeled "+repair", and the LP bound is
        # fetched separately so the cost_ratio column is still present.
        assert "greedy+repair" not in output
        assert "cost_ratio" in output
        for name in ("greedy", "naive-quality-first", "single-tree", "random"):
            assert name in output

    def test_compare_bound_only_reference_errors(self, problem_file, capsys):
        assert main(["compare", "--problem", problem_file, "--strategy", "lp-bound"]) == 2
        assert "no integral design" in capsys.readouterr().err

    def test_design_list_strategies(self, capsys):
        assert main(["design", "--list-strategies"]) == 0
        output = capsys.readouterr().out
        for name in ("spaa03", "spaa03-extended", "greedy", "exact", "lp-bound"):
            assert name in output

    def test_design_requires_problem_without_list(self, capsys):
        assert main(["design"]) == 2
        assert "--problem is required" in capsys.readouterr().err


class TestBatch:
    def test_batch_roundtrip(self, problem_file, tmp_path, capsys):
        from repro.api import DesignRequest, dump_requests_jsonl
        from repro.core.algorithm import DesignParameters

        problem = load_problem(problem_file)
        requests = [
            DesignRequest(
                problem=problem,
                parameters=DesignParameters(seed=0, repair_shortfall=True),
                strategy="spaa03",
                request_id="a",
            ),
            DesignRequest(problem=problem, strategy="greedy", request_id="b"),
        ]
        requests_path = tmp_path / "requests.jsonl"
        dump_requests_jsonl(requests, requests_path)
        out = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--requests", str(requests_path), "--jobs", "2", "--out", str(out)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "batch of 2 designs" in output
        import json

        documents = [json.loads(line) for line in out.read_text().splitlines()]
        assert [d["kind"] for d in documents] == ["design-result"] * 2
        assert [d["request_id"] for d in documents] == ["a", "b"]

    def test_batch_missing_file_errors(self, tmp_path, capsys):
        assert main(["batch", "--requests", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read requests" in capsys.readouterr().err

    def test_batch_malformed_jsonl_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "design-request", "schema_version": 1\n')
        assert main(["batch", "--requests", str(path)]) == 2
        err = capsys.readouterr().err
        assert "cannot read requests" in err
        assert "bad.jsonl:1" in err  # names the offending file and line

    def test_batch_wrong_document_kind_errors(self, tmp_path, capsys):
        path = tmp_path / "wrong.jsonl"
        path.write_text('{"kind": "design-result", "schema_version": 1}\n')
        assert main(["batch", "--requests", str(path)]) == 2
        assert "bad request document" in capsys.readouterr().err

    def test_batch_empty_file_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        assert main(["batch", "--requests", str(path)]) == 2
        assert "no requests" in capsys.readouterr().err


class TestShardedCli:
    @pytest.fixture
    def scale_problem_file(self, tmp_path):
        from repro.core.serialization import dump_problem
        from repro.workloads import InternetScaleConfig, generate_internet_scale_problem

        problem, _registry = generate_internet_scale_problem(
            InternetScaleConfig(num_sinks=80, sinks_per_metro=20), rng=2
        )
        path = tmp_path / "scale.json"
        dump_problem(problem, str(path))
        return str(path)

    def test_sharded_design_end_to_end(self, scale_problem_file, tmp_path, capsys):
        out = tmp_path / "sharded.json"
        code = main(
            [
                "design",
                "--problem",
                scale_problem_file,
                "--strategy",
                "sharded:spaa03",
                "--shards",
                "3",
                "--jobs",
                "2",
                "--seed",
                "5",
                "--repair",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sharded:spaa03" in output
        problem = load_problem(scale_problem_file)
        solution = load_solution(str(out), problem)
        assert not solution.unserved_demands()

    def test_unknown_sharded_inner_strategy_errors(self, problem_file, capsys):
        code = main(
            ["design", "--problem", problem_file, "--strategy", "sharded:bogus"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown inner strategy 'bogus'" in err
        assert "spaa03" in err  # lists the known catalogue

    def test_sharded_bound_only_inner_strategy_errors(self, problem_file, capsys):
        code = main(
            ["design", "--problem", problem_file, "--strategy", "sharded:lp-bound"]
        )
        assert code == 2
        assert "bound only" in capsys.readouterr().err

    def test_shards_flag_rejected_on_bound_only_strategy(self, problem_file, capsys):
        code = main(
            ["design", "--problem", problem_file, "--strategy", "lp-bound", "--shards", "4"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--shards" in err and "sharded:<strategy>" in err

    def test_pipeline_flags_rejected_on_sharded_baseline(self, problem_file, capsys):
        # The wrapper itself is not a baseline, but the flags reach the inner
        # greedy baseline, which ignores them; the guard must look through.
        code = main(
            [
                "design",
                "--problem",
                problem_file,
                "--strategy",
                "sharded:greedy",
                "--multiplier",
                "4",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--multiplier" in err and "sharded:greedy" in err

    def test_isp_diversity_upgrades_sharded_spaa03(self, tmp_path, capsys):
        # Mirrors the monolithic spaa03 -> spaa03-extended upgrade: the shards
        # must run the Section-6 extended rounding, not the standard pipeline.
        from repro.core.serialization import dump_problem
        from repro.workloads import RandomInstanceConfig, random_problem

        problem = random_problem(
            RandomInstanceConfig(
                num_colors=3,
                num_reflectors=8,
                success_threshold_range=(0.9, 0.96),
            ),
            rng=0,
        )
        problem_path = tmp_path / "colored.json"
        dump_problem(problem, str(problem_path))
        code = main(
            [
                "design",
                "--problem",
                str(problem_path),
                "--strategy",
                "sharded:spaa03",
                "--shards",
                "2",
                "--isp-diversity",
                "--repair",
            ]
        )
        assert code == 0
        assert "sharded:spaa03-extended" in capsys.readouterr().out

    def test_sharded_flags_rejected_on_plain_pipeline(self, problem_file, capsys):
        code = main(
            [
                "design",
                "--problem",
                problem_file,
                "--jobs",
                "2",
                "--partitioner",
                "metro",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err and "--partitioner" in err

    def test_list_strategies_mentions_sharded(self, capsys):
        assert main(["design", "--list-strategies"]) == 0
        assert "sharded:X" in capsys.readouterr().out


@pytest.fixture
def solution_file(problem_file, tmp_path):
    from repro.api import DesignRequest, get_designer
    from repro.core.serialization import dump_solution

    problem = load_problem(problem_file)
    solution = get_designer("greedy").design(DesignRequest(problem=problem)).solution
    path = tmp_path / "solution.json"
    dump_solution(solution, str(path))
    return str(path)


class TestSimulateMonteCarlo:
    def test_list_scenarios(self, capsys):
        assert main(["simulate", "--list-scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("baseline", "isp-outage", "regional-failure", "flash-crowd", "bursty-links"):
            assert name in output

    def test_trials_switch_to_vectorized_engine(self, problem_file, solution_file, capsys):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--packets",
                "400",
                "--trials",
                "8",
                "--window",
                "80",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Monte-Carlo simulation (8 trials x 400 packets)" in output
        assert "mean_loss" in output and "95% CI" in output

    def test_compat_engine_matches_legacy_output(self, problem_file, solution_file, capsys):
        args = [
            "simulate",
            "--problem",
            problem_file,
            "--solution",
            solution_file,
            "--packets",
            "500",
            "--seed",
            "4",
        ]
        assert main(args) == 0
        legacy = capsys.readouterr().out
        assert main(args + ["--engine", "compat", "--window", "500"]) == 0
        compat = capsys.readouterr().out
        # Same seed, same draw order: the measured numbers agree exactly.
        def mean_loss(text):
            line = next(ln for ln in text.splitlines() if ln.startswith("mean loss"))
            return line.split()[2].rstrip(";")

        assert mean_loss(legacy) == mean_loss(compat)

    def test_legacy_engine_rejects_multiple_trials(self, problem_file, solution_file, capsys):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--trials",
                "4",
                "--engine",
                "legacy",
            ]
        )
        assert code == 2
        assert "single trial" in capsys.readouterr().err

    def test_scenario_sweep(self, problem_file, solution_file, capsys):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--packets",
                "300",
                "--trials",
                "4",
                "--window",
                "40",
                "--scenario",
                "baseline,flash-crowd",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "reliability sweep" in output
        assert "flash-crowd" in output and "baseline" in output

    def test_scenario_sweep_parallel_matches_serial(
        self, problem_file, solution_file, capsys
    ):
        args = [
            "simulate",
            "--problem",
            problem_file,
            "--solution",
            solution_file,
            "--packets",
            "200",
            "--trials",
            "3",
            "--window",
            "40",
            "--scenario",
            "all",
        ]
        assert main(args + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Deterministic given the seed, independent of --jobs (title aside).
        assert serial.splitlines()[2:] == parallel.splitlines()[2:]

    def test_unknown_scenario_errors(self, problem_file, solution_file, capsys):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--scenario",
                "nope",
            ]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_simulate_requires_files(self, capsys):
        assert main(["simulate"]) == 2
        assert "--problem and --solution" in capsys.readouterr().err


class TestStreamingCli:
    def test_list_traces(self, capsys):
        assert main(["simulate", "--list-traces"]) == 0
        output = capsys.readouterr().out
        assert "diurnal" in output and "metro-diurnal" in output

    def test_stream_run_with_traces_and_memory_bound(
        self, problem_file, solution_file, capsys
    ):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--stream",
                "--packets",
                "300",
                "--trials",
                "4",
                "--window",
                "100",
                "--seed",
                "1",
                "--max-memory",
                "64M",
                "--trace",
                "diurnal,metro-diurnal",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "streaming Monte-Carlo audit" in output
        assert "trace replay: diurnal" in output
        assert "trace replay: metro-diurnal" in output

    def test_impossible_memory_bound_is_a_clean_error(
        self, problem_file, solution_file, capsys
    ):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--stream",
                "--max-memory",
                "1",
            ]
        )
        assert code == 2
        assert "single demand row" in capsys.readouterr().err

    def test_unparseable_memory_size_errors(self, problem_file, solution_file, capsys):
        args = [
            "simulate",
            "--problem",
            problem_file,
            "--solution",
            solution_file,
            "--stream",
        ]
        assert main(args + ["--max-memory", "lots"]) == 2
        assert "memory" in capsys.readouterr().err.lower()
        assert main(args + ["--max-memory", "0"]) == 2
        capsys.readouterr()

    def test_trace_and_tiles_require_stream(self, problem_file, solution_file, capsys):
        base = ["simulate", "--problem", problem_file, "--solution", solution_file]
        assert main(base + ["--trace", "diurnal"]) == 2
        assert "--trace requires --stream" in capsys.readouterr().err
        assert main(base + ["--demand-tile", "8"]) == 2
        assert "require --stream" in capsys.readouterr().err

    def test_unknown_trace_lists_the_catalogue(
        self, problem_file, solution_file, capsys
    ):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--stream",
                "--trace",
                "no-such-trace",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown trace" in err and "diurnal" in err


class TestBenchSuites:
    def test_unknown_suite_lists_tags(self, capsys):
        assert main(["bench", "--suite", "bogus", "--out", "/tmp/ignored"]) == 2
        err = capsys.readouterr().err
        assert "unknown suite" in err and "reliability" in err

    def test_list_shows_reliability_tag(self, capsys):
        assert main(["bench", "--list"]) == 0
        output = capsys.readouterr().out
        assert "r1" in output and "r2" in output and "reliability" in output

    def test_list_shows_suite_tags_for_every_scenario(self, capsys):
        from repro.analysis.runner import scenario_ids, suite_tags

        assert main(["bench", "--list"]) == 0
        output = capsys.readouterr().out
        tagged = {sid for members in suite_tags().values() for sid in members}
        # Every built-in scenario carries at least one suite tag, and the
        # listing prints the tags so e.g. r1/r2 and t8 are distinguishable
        # from the paper suite at a glance.  (Underscore-prefixed ids are
        # synthetic test doubles registered by other test modules.)
        builtin = {sid for sid in scenario_ids() if not sid.startswith("_")}
        assert builtin <= tagged
        for tag in ("paper", "comparison", "figures", "reliability", "scale", "perf"):
            assert tag in output

    def test_scale_suite_expands_to_i1_and_t8(self):
        from repro.analysis.runner import expand_scenario_ids

        assert expand_scenario_ids(["scale"]) == ["i1", "r3", "t8"]
        assert expand_scenario_ids(["reliability"]) == ["a1", "r1", "r2", "r3"]

    def test_reliability_suite_smoke(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--suite",
                "reliability",
                "--smoke",
                "--out",
                str(tmp_path),
                "--master-seed",
                "0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "R1" in output and "R2" in output
        assert (tmp_path / "BENCH_R1.json").exists()
        assert (tmp_path / "BENCH_R2.json").exists()


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            main(["generate", "--workload", "random"])


class TestSolverBackendCli:
    def test_list_backends(self, capsys):
        assert main(["design", "--list-backends"]) == 0
        output = capsys.readouterr().out
        assert "highs" in output and "highs-mip" in output and "gurobi" in output

    def test_unknown_backend_exits_2_naming_installed(self, problem_file, capsys):
        code = main(
            ["design", "--problem", problem_file, "--solver-backend", "cplex"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown or unavailable solver backend" in err
        assert "installed backends" in err
        assert "highs" in err and "highs-mip" in err

    def test_unavailable_backend_exits_2(self, problem_file, capsys):
        try:
            import gurobipy  # noqa: F401

            pytest.skip("gurobipy installed; unavailable path not testable")
        except ImportError:
            pass
        code = main(
            ["design", "--problem", problem_file, "--solver-backend", "gurobi"]
        )
        assert code == 2
        assert "unavailable" in capsys.readouterr().err

    def test_update_rejects_unknown_backend(self, problem_file, capsys):
        code = main(
            [
                "update",
                "--problem",
                problem_file,
                "--solution",
                problem_file,
                "--event",
                "sink-churn",
                "--solver-backend",
                "cplex",
            ]
        )
        assert code == 2
        assert "installed backends" in capsys.readouterr().err

    def test_milp_flags_rejected_on_non_milp_strategy(self, problem_file, capsys):
        code = main(
            [
                "design",
                "--problem",
                problem_file,
                "--strategy",
                "greedy",
                "--time-limit",
                "5",
            ]
        )
        assert code == 2
        assert "milp-exact" in capsys.readouterr().err
        code = main(
            [
                "design",
                "--problem",
                problem_file,
                "--strategy",
                "spaa03",
                "--mip-gap",
                "0.01",
            ]
        )
        assert code == 2
        assert "milp-exact" in capsys.readouterr().err

    def test_design_with_milp_exact_strategy(self, problem_file, tmp_path, capsys):
        out = tmp_path / "milp.json"
        code = main(
            [
                "design",
                "--problem",
                problem_file,
                "--strategy",
                "milp-exact",
                "--time-limit",
                "30",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "milp-exact" in output
        solution = load_solution(str(out), load_problem(problem_file))
        assert solution.metadata["algorithm"] == "milp-exact"

    def test_design_on_explicit_mip_backend(self, problem_file, capsys):
        code = main(
            [
                "design",
                "--problem",
                problem_file,
                "--strategy",
                "spaa03",
                "--solver-backend",
                "highs-mip",
            ]
        )
        assert code == 0
        assert "total_cost" in capsys.readouterr().out


class TestScenariosCli:
    """The `repro scenarios` subcommand and DSL files on `simulate --scenario`."""

    def _dsl_spec(self, name="cli-custom"):
        return {
            "version": 1,
            "name": name,
            "description": "a cli test scenario",
            "primitives": [{"kind": "isp-outage"}],
        }

    @pytest.fixture(autouse=True)
    def _clean_catalogue(self):
        from repro.simulation.scenarios import _REGISTRY, _ensure_shipped_scenarios

        _ensure_shipped_scenarios()
        before = set(_REGISTRY)
        yield
        for name in set(_REGISTRY) - before:
            del _REGISTRY[name]

    def test_scenarios_list(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "baseline" in output and "built-in" in output
        assert "metro-quake" in output and "dsl" in output

    def test_scenarios_validate_shipped(self, capsys):
        assert main(["scenarios", "--validate"]) == 0
        output = capsys.readouterr().out
        assert "10 scenario file(s) valid" in output

    def test_scenarios_validate_bad_file_exits_2(self, tmp_path, capsys):
        import json

        good = tmp_path / "good.json"
        good.write_text(json.dumps(self._dsl_spec("cli-good")))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 9, "primitives": []}))
        code = main(["scenarios", "--validate", str(good), str(bad)])
        assert code == 2
        captured = capsys.readouterr()
        assert "ok" in captured.out and "cli-good" in captured.out
        assert "FAIL" in captured.err
        assert "[bad-version]" in captured.err  # named codes reach the user

    def test_scenarios_show_dsl(self, capsys):
        assert main(["scenarios", "--show", "metro-quake"]) == 0
        output = capsys.readouterr().out
        assert "metro-quake" in output and "normalized spec" in output

    def test_scenarios_show_unknown_exits_2(self, capsys):
        assert main(["scenarios", "--show", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "baseline" in err

    def test_simulate_with_dsl_file(self, problem_file, solution_file, tmp_path, capsys):
        import json

        path = tmp_path / "custom.json"
        path.write_text(json.dumps(self._dsl_spec()))
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--packets",
                "200",
                "--trials",
                "3",
                "--window",
                "40",
                "--scenario",
                f"baseline,{path}",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "cli-custom" in output and "baseline" in output

    def test_simulate_invalid_dsl_file_exits_2(
        self, problem_file, solution_file, tmp_path, capsys
    ):
        import json

        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"version": 1, "name": "x!", "primitives": []}))
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--scenario",
                str(path),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid scenario" in err or "FAIL" in err

    def test_simulate_missing_dsl_file_exits_2(
        self, problem_file, solution_file, tmp_path, capsys
    ):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--scenario",
                str(tmp_path / "nope.yaml"),
            ]
        )
        assert code == 2
        assert "cannot read scenario file" in capsys.readouterr().err

    def test_simulate_unknown_scenario_names_catalogue(
        self, problem_file, solution_file, capsys
    ):
        code = main(
            [
                "simulate",
                "--problem",
                problem_file,
                "--solution",
                solution_file,
                "--scenario",
                "not-a-scenario",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        # The error names the available catalogue, shipped scenarios included.
        assert "unknown scenario" in err
        assert "metro-quake" in err


class TestGenerateAsGeo:
    def test_generate_as_geo(self, tmp_path, capsys):
        out = tmp_path / "asgeo.json"
        code = main(
            [
                "generate",
                "--workload",
                "as-geo",
                "--sinks",
                "60",
                "--seed",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        problem = load_problem(str(out))
        assert problem.num_sinks == 60
        assert problem.feasibility_report() == []
        # Metro-grounded names: clusters recoverable, e.g. tokyo-s0.
        assert any(sink.startswith("tokyo-") for sink in problem.sinks)
