"""Tests for the exact MILP designer (repro.baselines.milp).

The load-bearing claim: ``milp-exact`` solves the *same* Section-2 IP the
brute-force ``exact`` baseline enumerates, so on every instance small enough
for both, their optimal costs must agree to 1e-9 -- and the cost must sit
between the LP lower bound and every heuristic's cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import DesignRequest, comparison_designers, get_designer
from repro.baselines.exact import exact_design
from repro.baselines.milp import _reflector_equivalence_classes, milp_exact_design
from repro.core.algorithm import DesignParameters, fractional_lower_bound
from repro.core.problem import OverlayDesignProblem
from repro.lp import SolverError
from repro.workloads import RandomInstanceConfig, random_problem


def tiny_instance(seed: int) -> OverlayDesignProblem:
    return random_problem(
        RandomInstanceConfig(
            num_streams=1,
            num_reflectors=4,
            num_sinks=3,
            demands_per_sink=1,
            min_candidates_per_demand=3,
        ),
        rng=seed,
    )


def twin_reflector_problem() -> OverlayDesignProblem:
    """Three bit-identical reflectors (one orbitope class) plus a decoy."""
    problem = OverlayDesignProblem()
    problem.add_stream("s")
    for name in ("twin-a", "twin-b", "twin-c"):
        problem.add_reflector(name, cost=4.0, fanout=2)
        problem.add_stream_edge("s", name, 0.02, 0.5)
    problem.add_reflector("decoy", cost=9.0, fanout=2)
    problem.add_stream_edge("s", "decoy", 0.02, 0.5)
    for sink in ("d1", "d2"):
        problem.add_sink(sink)
        for name in ("twin-a", "twin-b", "twin-c", "decoy"):
            problem.add_delivery_edge(name, sink, 0.02, 0.5)
        problem.add_demand(sink, "s", success_threshold=0.9)
    return problem


class TestMatchesBruteForce:
    def test_tiny_problem_cost_matches_exact(self, tiny_problem):
        brute = exact_design(tiny_problem)
        milp = milp_exact_design(tiny_problem)
        assert milp.status == "optimal"
        assert milp.optimal_cost == pytest.approx(brute.optimal_cost, abs=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_tiny_corpus_cost_matches_exact(self, seed):
        problem = tiny_instance(seed)
        brute = exact_design(problem)
        milp = milp_exact_design(problem)
        assert milp.status == "optimal"
        assert milp.optimal_cost == pytest.approx(brute.optimal_cost, abs=1e-9)

    def test_solution_is_feasible(self, tiny_problem):
        milp = milp_exact_design(tiny_problem)
        for demand in tiny_problem.demands:
            assert milp.solution.weight_satisfaction(demand) >= 1.0 - 1e-6
        assert milp.solution.max_fanout_factor() <= 1.0 + 1e-9


class TestOrderingAgainstBoundsAndHeuristics:
    @pytest.mark.parametrize("seed", range(3))
    def test_lp_below_milp_below_every_heuristic(self, seed):
        problem = tiny_instance(seed)
        lp_bound = fractional_lower_bound(problem)
        milp = milp_exact_design(problem)
        assert lp_bound <= milp.optimal_cost + 1e-6
        for designer in comparison_designers():
            result = designer.design(
                DesignRequest(
                    problem=problem,
                    parameters=DesignParameters(seed=0),
                    strategy=designer.name,
                )
            )
            solution = result.solution
            feasible = all(
                solution.weight_satisfaction(d) >= 1.0 - 1e-9
                for d in problem.demands
            ) and solution.max_fanout_factor() <= 1.0 + 1e-9
            if feasible:
                assert milp.optimal_cost <= solution.total_cost() + 1e-6, (
                    f"{designer.name} beat the proven integer optimum"
                )


class TestSymmetryBreaking:
    def test_equivalence_classes_detected(self):
        classes = _reflector_equivalence_classes(twin_reflector_problem())
        assert classes == [["twin-a", "twin-b", "twin-c"]]

    def test_distinct_reflectors_are_not_grouped(self, tiny_problem):
        # build_tiny_problem's reflectors differ in cost/edges: no classes.
        assert _reflector_equivalence_classes(tiny_problem) == []

    def test_symmetry_rows_preserve_the_optimum(self):
        problem = twin_reflector_problem()
        plain = milp_exact_design(problem, symmetry_breaking=False)
        broken = milp_exact_design(problem, symmetry_breaking=True)
        assert plain.symmetry_rows == 0
        assert broken.symmetry_rows == 2  # |class| - 1 ordering rows
        assert broken.symmetry_classes == 1
        assert broken.optimal_cost == pytest.approx(plain.optimal_cost, abs=1e-9)
        assert broken.status == "optimal"

    def test_orbitope_rows_prefer_earliest_registered_twins(self):
        milp = milp_exact_design(twin_reflector_problem())
        built = milp.solution.built_reflectors
        # The ordering rows force z[twin-a] >= z[twin-b] >= z[twin-c]: any
        # built twin prefix must start at twin-a.
        if built & {"twin-b", "twin-c"}:
            assert "twin-a" in built


class TestOptionsAndDiagnostics:
    def test_warm_start_does_not_change_the_optimum(self, tiny_problem):
        cold = milp_exact_design(tiny_problem)
        warm = milp_exact_design(tiny_problem, warm_start=cold.lp_values)
        assert warm.optimal_cost == pytest.approx(cold.optimal_cost, abs=1e-9)
        assert warm.status == "optimal"

    def test_limits_accepted_and_reported(self, tiny_problem):
        milp = milp_exact_design(tiny_problem, time_limit=30.0, mip_gap=1e-6)
        assert milp.status in ("optimal", "feasible")
        assert milp.mip_gap is not None
        assert milp.node_count is not None
        assert milp.mip_dual_bound == pytest.approx(milp.optimal_cost, rel=1e-4)

    def test_unknown_backend_fails_fast(self, tiny_problem):
        with pytest.raises(SolverError, match="installed backends"):
            milp_exact_design(tiny_problem, backend="cplex")

    def test_lp_only_backend_rejected(self, tiny_problem):
        with pytest.raises(SolverError, match="pure LPs only"):
            milp_exact_design(tiny_problem, backend="highs")


class TestDesignerRegistration:
    def test_registered_strategy_matches_direct_call(self, tiny_problem):
        direct = milp_exact_design(tiny_problem)
        result = get_designer("milp-exact").design(
            DesignRequest(
                problem=tiny_problem,
                parameters=DesignParameters(),
                strategy="milp-exact",
            )
        )
        assert result.total_cost == pytest.approx(direct.optimal_cost, abs=1e-9)
        assert result.metadata["milp_status"] == "optimal"
        assert result.lower_bound == pytest.approx(direct.mip_dual_bound)
        assert result.audit is not None
        assert result.audit.min_weight_fraction >= 1.0 - 1e-6
        assert result.audit.max_fanout_factor <= 1.0 + 1e-9

    def test_default_backend_upgrade_to_mip(self, tiny_problem):
        # parameters.solver_backend == "highs" cannot branch; the designer
        # upgrades it to "highs-mip" instead of failing.
        result = get_designer("milp-exact").design(
            DesignRequest(
                problem=tiny_problem,
                parameters=DesignParameters(solver_backend="highs"),
                strategy="milp-exact",
            )
        )
        assert result.metadata["solver_backend"] == "highs-mip"

    def test_warm_start_option_round_trips_as_list(self, tiny_problem):
        cold = milp_exact_design(tiny_problem)
        result = get_designer("milp-exact").design(
            DesignRequest(
                problem=tiny_problem,
                parameters=DesignParameters(),
                strategy="milp-exact",
                options={"warm_start": np.asarray(cold.lp_values).tolist()},
            )
        )
        assert result.total_cost == pytest.approx(cold.optimal_cost, abs=1e-9)
