"""Tests for Dinic max-flow (repro.flow.maxflow), cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import FlowNetwork, assert_feasible_flow, max_flow


def build_classic_example() -> tuple[FlowNetwork, int, int]:
    """The standard 6-node max-flow textbook example (max flow = 23)."""
    net = FlowNetwork()
    s, a, b, c, d, t = (net.add_node() for _ in range(6))
    net.add_edge(s, a, 16)
    net.add_edge(s, b, 13)
    net.add_edge(a, b, 10)
    net.add_edge(b, a, 4)
    net.add_edge(a, c, 12)
    net.add_edge(c, b, 9)
    net.add_edge(b, d, 14)
    net.add_edge(d, c, 7)
    net.add_edge(c, t, 20)
    net.add_edge(d, t, 4)
    return net, s, t


class TestMaxFlowKnownInstances:
    def test_classic_clrs_example(self):
        net, s, t = build_classic_example()
        assert max_flow(net, s, t) == pytest.approx(23.0)
        assert_feasible_flow(net, s, t)

    def test_single_edge(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        net.add_edge(s, t, 5.0)
        assert max_flow(net, s, t) == pytest.approx(5.0)

    def test_disconnected(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        net.add_node()
        assert max_flow(net, s, t) == 0.0

    def test_limit_caps_flow(self):
        net, s, t = build_classic_example()
        assert max_flow(net, s, t, limit=10.0) == pytest.approx(10.0)
        assert_feasible_flow(net, s, t)

    def test_same_source_sink_rejected(self):
        net = FlowNetwork()
        s = net.add_node()
        with pytest.raises(ValueError):
            max_flow(net, s, s)

    def test_parallel_edges(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        net.add_edge(s, t, 1.0)
        net.add_edge(s, t, 2.5)
        assert max_flow(net, s, t) == pytest.approx(3.5)

    def test_bipartite_unit_capacities(self):
        """Unit-capacity bipartite graph: max flow equals a maximum matching."""
        net = FlowNetwork()
        s = net.add_node("s")
        t = net.add_node("t")
        lefts = [net.add_node(f"l{i}") for i in range(3)]
        rights = [net.add_node(f"r{i}") for i in range(3)]
        for left in lefts:
            net.add_edge(s, left, 1.0)
        for right in rights:
            net.add_edge(right, t, 1.0)
        # l0-r0, l0-r1, l1-r1, l2-r2 -> perfect matching exists.
        net.add_edge(lefts[0], rights[0], 1.0)
        net.add_edge(lefts[0], rights[1], 1.0)
        net.add_edge(lefts[1], rights[1], 1.0)
        net.add_edge(lefts[2], rights[2], 1.0)
        assert max_flow(net, s, t) == pytest.approx(3.0)


def _random_graph_as_both(num_nodes: int, num_edges: int, rng: np.random.Generator):
    """Build the same random digraph as a FlowNetwork and a networkx DiGraph."""
    net = FlowNetwork()
    nodes = [net.add_node() for _ in range(num_nodes)]
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_nodes))
    for _ in range(num_edges):
        u, v = rng.integers(0, num_nodes, size=2)
        if u == v:
            continue
        capacity = float(rng.integers(1, 10))
        net.add_edge(nodes[int(u)], nodes[int(v)], capacity)
        if graph.has_edge(int(u), int(v)):
            graph[int(u)][int(v)]["capacity"] += capacity
        else:
            graph.add_edge(int(u), int(v), capacity=capacity)
    return net, graph


class TestMaxFlowAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_match_networkx(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(4, 12))
        num_edges = int(rng.integers(num_nodes, 4 * num_nodes))
        net, graph = _random_graph_as_both(num_nodes, num_edges, rng)
        source, sink = 0, num_nodes - 1
        expected = nx.maximum_flow_value(graph, source, sink) if graph.has_node(sink) else 0.0
        value = max_flow(net, source, sink)
        assert value == pytest.approx(expected, abs=1e-9)
        assert_feasible_flow(net, source, sink)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_flow_feasible_and_maximal(self, seed):
        """Flow is always feasible, and the residual graph has no s->t path."""
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(3, 9))
        num_edges = int(rng.integers(2, 3 * num_nodes))
        net, graph = _random_graph_as_both(num_nodes, num_edges, rng)
        source, sink = 0, num_nodes - 1
        value = max_flow(net, source, sink)
        assert value >= 0.0
        assert_feasible_flow(net, source, sink)
        expected = nx.maximum_flow_value(graph, source, sink)
        assert value == pytest.approx(expected, abs=1e-9)
