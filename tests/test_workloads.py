"""Tests for the workload generators (repro.workloads)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import NodeRole
from repro.workloads import (
    AkamaiLikeConfig,
    FlashCrowdConfig,
    RandomInstanceConfig,
    bandwidth_price,
    distance,
    generate_akamai_like_topology,
    generate_flash_crowd_scenario,
    loss_probability_from_distance,
    random_problem,
    small_example_problem,
    zipf_viewership,
)
from repro.workloads.synthetic import success_threshold_for_quality


class TestSyntheticPrimitives:
    def test_distance(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_loss_from_distance_bounds(self, rng):
        for _ in range(200):
            value = loss_probability_from_distance(rng.uniform(0, 2), rng)
            assert 0.0005 <= value <= 0.15

    def test_loss_grows_with_distance_on_average(self, rng):
        near = np.mean([loss_probability_from_distance(0.05, rng) for _ in range(300)])
        far = np.mean([loss_probability_from_distance(1.5, rng) for _ in range(300)])
        assert far > near

    def test_loss_rejects_negative_distance(self, rng):
        with pytest.raises(ValueError):
            loss_probability_from_distance(-1.0, rng)

    def test_bandwidth_price_positive_and_scales(self, rng):
        cheap = np.mean([bandwidth_price(1.0, rng) for _ in range(200)])
        pricey = np.mean([bandwidth_price(2.0, rng) for _ in range(200)])
        assert cheap > 0
        assert pricey > cheap
        with pytest.raises(ValueError):
            bandwidth_price(0.0, rng)

    def test_zipf_viewership_shape(self, rng):
        counts = zipf_viewership(5, 100, rng)
        assert len(counts) == 5
        assert all(1 <= c <= 100 for c in counts)
        assert counts[0] >= counts[-1]
        with pytest.raises(ValueError):
            zipf_viewership(0, 10, rng)

    def test_quality_tiers(self):
        assert success_threshold_for_quality("premium") == 0.999
        assert success_threshold_for_quality("standard") == 0.99
        assert success_threshold_for_quality("best-effort") == 0.95
        with pytest.raises(ValueError):
            success_threshold_for_quality("imaginary")


class TestRandomInstances:
    def test_sizes_match_config(self):
        config = RandomInstanceConfig(num_streams=3, num_reflectors=7, num_sinks=9)
        problem = random_problem(config, rng=0)
        assert problem.num_streams == 3
        assert problem.num_reflectors == 7
        assert problem.num_sinks == 9
        assert problem.num_demands == 9

    def test_always_feasible(self):
        for seed in range(8):
            problem = random_problem(RandomInstanceConfig(), rng=seed)
            assert problem.feasibility_report() == []
            problem.validate()

    def test_deterministic_given_seed(self):
        a = random_problem(RandomInstanceConfig(), rng=42)
        b = random_problem(RandomInstanceConfig(), rng=42)
        assert a.demands == b.demands
        assert a.reflectors == b.reflectors
        assert {(e.stream, e.reflector): e.cost for e in a.stream_edges()} == {
            (e.stream, e.reflector): e.cost for e in b.stream_edges()
        }

    def test_colors_assigned_when_requested(self):
        problem = random_problem(RandomInstanceConfig(num_colors=3), rng=1)
        colors = {problem.color(r) for r in problem.reflectors}
        assert colors == {"isp0", "isp1", "isp2"}
        uncolored = random_problem(RandomInstanceConfig(num_colors=0), rng=1)
        assert all(uncolored.color(r) is None for r in uncolored.reflectors)

    def test_min_candidates_respected(self):
        config = RandomInstanceConfig(
            stream_edge_density=0.05, delivery_edge_density=0.05, min_candidates_per_demand=2
        )
        problem = random_problem(config, rng=3)
        for demand in problem.demands:
            assert len(problem.candidate_reflectors(demand)) >= 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RandomInstanceConfig(num_streams=0)
        with pytest.raises(ValueError):
            RandomInstanceConfig(stream_edge_density=0.0)

    def test_small_example_problem_stable(self):
        problem = small_example_problem(0)
        assert problem.num_demands == 6
        problem.validate()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_generated_instances_valid(self, seed):
        config = RandomInstanceConfig(num_streams=2, num_reflectors=5, num_sinks=6)
        problem = random_problem(config, rng=seed)
        problem.validate()
        assert problem.feasibility_report() == []
        for demand in problem.demands:
            assert 0.0 < demand.success_threshold < 1.0


class TestAkamaiLike:
    def test_topology_structure(self):
        config = AkamaiLikeConfig(num_regions=2, colos_per_region=3, num_isps=2)
        topology, registry = generate_akamai_like_topology(config, rng=0)
        assert len(topology.reflectors) == 2 * 3 * config.reflectors_per_colo
        assert len(topology.sinks) == 2 * 3
        assert len(topology.sources) == config.num_sources
        assert len(registry) == 2
        for node in topology.reflectors:
            assert node.isp in registry
            assert node.capacity == config.reflector_fanout

    def test_resulting_problem_feasible_and_designable(self):
        topology, _ = generate_akamai_like_topology(AkamaiLikeConfig(), rng=1)
        problem = topology.to_problem()
        assert problem.feasibility_report() == []
        problem.validate()

    def test_every_sink_has_at_least_two_candidate_reflectors(self):
        topology, _ = generate_akamai_like_topology(AkamaiLikeConfig(edge_density=0.1), rng=2)
        problem = topology.to_problem()
        for demand in problem.demands:
            assert len(problem.candidate_reflectors(demand)) >= 2

    def test_deterministic_given_seed(self):
        a, _ = generate_akamai_like_topology(AkamaiLikeConfig(), rng=5)
        b, _ = generate_akamai_like_topology(AkamaiLikeConfig(), rng=5)
        assert a.size_summary() == b.size_summary()
        assert {n.name for n in a.nodes()} == {n.name for n in b.nodes()}

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AkamaiLikeConfig(num_regions=0)
        with pytest.raises(ValueError):
            AkamaiLikeConfig(quality_mix=(0.5, 0.5, 0.5))


class TestFlashCrowd:
    def test_event_stream_added(self):
        config = FlashCrowdConfig(subscription_fraction=1.0)
        topology, _ = generate_flash_crowd_scenario(config, rng=0)
        streams = {s.name for s in topology.streams()}
        assert "flash-crowd-event" in streams
        event = topology.stream("flash-crowd-event")
        assert len(event.subscribers) == len(topology.nodes(NodeRole.SINK))
        assert all(t == config.event_threshold for t in event.subscribers.values())
        assert event.bandwidth == config.event_bandwidth

    def test_partial_subscription(self):
        config = FlashCrowdConfig(subscription_fraction=0.5)
        topology, _ = generate_flash_crowd_scenario(config, rng=1)
        event = topology.stream("flash-crowd-event")
        num_sinks = len(topology.nodes(NodeRole.SINK))
        assert 1 <= len(event.subscribers) <= num_sinks
        assert len(event.subscribers) == max(1, round(0.5 * num_sinks))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FlashCrowdConfig(event_bandwidth=0.0)
        with pytest.raises(ValueError):
            FlashCrowdConfig(event_threshold=1.0)
        with pytest.raises(ValueError):
            FlashCrowdConfig(subscription_fraction=0.0)

    def test_flash_crowd_problem_designable(self):
        from repro import DesignParameters, design_overlay

        config = FlashCrowdConfig(
            deployment=AkamaiLikeConfig(num_regions=2, colos_per_region=2, num_streams=1)
        )
        topology, _ = generate_flash_crowd_scenario(config, rng=2)
        problem = topology.to_problem()
        report = design_overlay(problem, DesignParameters(seed=0))
        assert report.solution.assignments
