"""Tests for the flow-network container (repro.flow.graph)."""

from __future__ import annotations

import pytest

from repro.flow import FlowNetwork


class TestNodes:
    def test_add_and_count(self):
        net = FlowNetwork()
        a = net.add_node()
        b = net.add_node("b")
        assert net.num_nodes == 2
        assert a == 0 and b == 1
        assert net.label_of(b) == "b"
        assert net.label_of(a) is None

    def test_node_by_label_creates_once(self):
        net = FlowNetwork()
        first = net.node("x")
        second = net.node("x")
        assert first == second
        assert net.num_nodes == 1
        assert net.has_label("x")
        assert not net.has_label("y")

    def test_duplicate_label_rejected(self):
        net = FlowNetwork()
        net.add_node("a")
        with pytest.raises(ValueError):
            net.add_node("a")


class TestEdges:
    def test_add_edge_and_view(self):
        net = FlowNetwork()
        a, b = net.add_node(), net.add_node()
        edge_id = net.add_edge(a, b, capacity=3.0, cost=2.0, data="payload")
        edge = net.edge(edge_id)
        assert edge.tail == a and edge.head == b
        assert edge.capacity == 3.0 and edge.cost == 2.0
        assert edge.data == "payload"
        assert net.num_edges == 1

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        a, b = net.add_node(), net.add_node()
        with pytest.raises(ValueError):
            net.add_edge(a, b, capacity=-1.0)

    def test_out_of_range_nodes_rejected(self):
        net = FlowNetwork()
        a = net.add_node()
        with pytest.raises(IndexError):
            net.add_edge(a, 5, capacity=1.0)

    def test_edge_lookup_rejects_odd_ids(self):
        net = FlowNetwork()
        a, b = net.add_node(), net.add_node()
        net.add_edge(a, b, capacity=1.0)
        with pytest.raises(KeyError):
            net.edge(1)  # the residual arc, not a user edge
        with pytest.raises(KeyError):
            net.flow_on(1)

    def test_edges_iteration(self):
        net = FlowNetwork()
        nodes = [net.add_node() for _ in range(3)]
        net.add_edge(nodes[0], nodes[1], 1.0)
        net.add_edge(nodes[1], nodes[2], 2.0)
        assert [edge.capacity for edge in net.edges()] == [1.0, 2.0]


class TestFlowState:
    def test_push_and_flow_on(self):
        net = FlowNetwork()
        a, b = net.add_node(), net.add_node()
        edge_id = net.add_edge(a, b, capacity=2.0, cost=1.5)
        net._push(edge_id, 1.0)
        assert net.flow_on(edge_id) == pytest.approx(1.0)
        assert net.residual_capacity(edge_id) == pytest.approx(1.0)
        assert net.total_flow_cost() == pytest.approx(1.5)

    def test_reset_flow_restores_capacity(self):
        net = FlowNetwork()
        a, b = net.add_node(), net.add_node()
        edge_id = net.add_edge(a, b, capacity=2.0)
        net._push(edge_id, 2.0)
        net.reset_flow()
        assert net.flow_on(edge_id) == 0.0
        assert net.residual_capacity(edge_id) == 2.0
        assert net.edge(edge_id).capacity == 2.0

    def test_flows_mapping(self):
        net = FlowNetwork()
        a, b, c = (net.add_node() for _ in range(3))
        e1 = net.add_edge(a, b, capacity=1.0)
        e2 = net.add_edge(b, c, capacity=1.0)
        net._push(e1, 0.5)
        flows = net.flows()
        assert flows[e1] == pytest.approx(0.5)
        assert flows[e2] == 0.0
