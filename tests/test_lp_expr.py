"""Tests for the LP expression layer (repro.lp.expr)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lp import LinearExpr, LinearProgram, Sense


@pytest.fixture
def model():
    return LinearProgram()


class TestVariableArithmetic:
    def test_add_variables(self, model):
        x = model.add_variable("x")
        y = model.add_variable("y")
        expr = x + y
        assert expr.coeffs == {0: 1.0, 1: 1.0}
        assert expr.constant == 0.0

    def test_scalar_multiplication(self, model):
        x = model.add_variable("x")
        expr = 3.0 * x
        assert expr.coeffs == {0: 3.0}
        expr2 = x * 2
        assert expr2.coeffs == {0: 2.0}

    def test_subtraction_and_negation(self, model):
        x = model.add_variable("x")
        y = model.add_variable("y")
        expr = x - y
        assert expr.coeffs == {0: 1.0, 1: -1.0}
        neg = -x
        assert neg.coeffs == {0: -1.0}

    def test_adding_constants(self, model):
        x = model.add_variable("x")
        expr = x + 5.0
        assert expr.constant == 5.0
        expr2 = 5.0 + x
        assert expr2.constant == 5.0
        expr3 = 5.0 - x
        assert expr3.constant == 5.0
        assert expr3.coeffs == {0: -1.0}

    def test_repeated_variable_coefficients_accumulate(self, model):
        x = model.add_variable("x")
        expr = x + x + 2 * x
        assert expr.coeffs == {0: 4.0}


class TestLinearExprHelpers:
    def test_sum(self, model):
        xs = [model.add_variable(f"x{i}") for i in range(4)]
        expr = LinearExpr.sum(xs)
        assert expr.coeffs == {i: 1.0 for i in range(4)}

    def test_sum_with_constants(self, model):
        x = model.add_variable("x")
        expr = LinearExpr.sum([x, 2.0, 3.0])
        assert expr.constant == 5.0

    def test_weighted_sum(self, model):
        xs = [model.add_variable(f"x{i}") for i in range(3)]
        expr = LinearExpr.weighted_sum((float(i + 1), xs[i]) for i in range(3))
        assert expr.coeffs == {0: 1.0, 1: 2.0, 2: 3.0}

    def test_weighted_sum_merges_duplicates(self, model):
        x = model.add_variable("x")
        expr = LinearExpr.weighted_sum([(1.0, x), (2.5, x)])
        assert expr.coeffs == {0: 3.5}

    def test_value_evaluation(self, model):
        x = model.add_variable("x")
        y = model.add_variable("y")
        expr = 2 * x + 3 * y + 1.0
        assert expr.value([2.0, 1.0]) == pytest.approx(8.0)
        assert expr.value({0: 2.0, 1: 1.0}) == pytest.approx(8.0)

    def test_copy_is_independent(self, model):
        x = model.add_variable("x")
        expr = x + 1.0
        clone = expr.copy()
        clone += x
        assert expr.coeffs == {0: 1.0}
        assert clone.coeffs == {0: 2.0}

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=5))
    def test_scalar_multiply_scales_evaluation(self, values):
        model = LinearProgram()
        xs = [model.add_variable(f"x{i}") for i in range(len(values))]
        expr = LinearExpr.sum(xs)
        assert (expr * 2.0).value(values) == pytest.approx(2.0 * expr.value(values))


class TestConstraints:
    def test_le_constraint(self, model):
        x = model.add_variable("x")
        y = model.add_variable("y")
        constraint = (x + y) <= 3.0
        assert constraint.sense is Sense.LE
        assert constraint.rhs == 3.0

    def test_ge_constraint_with_expression_rhs(self, model):
        x = model.add_variable("x")
        y = model.add_variable("y")
        constraint = x >= y + 1.0
        assert constraint.sense is Sense.GE
        # x - y >= 1
        assert constraint.expr.coeffs == {0: 1.0, 1: -1.0}
        assert constraint.rhs == pytest.approx(1.0)

    def test_equality_constraint(self, model):
        x = model.add_variable("x")
        constraint = (x + 0.0).equals(2.0)
        assert constraint.sense is Sense.EQ
        assert constraint.rhs == 2.0

    def test_constant_folded_into_rhs(self, model):
        x = model.add_variable("x")
        constraint = (x + 5.0) <= 7.0
        assert constraint.rhs == pytest.approx(2.0)
        assert constraint.expr.constant == 0.0

    def test_violation_measure(self, model):
        x = model.add_variable("x")
        le = x <= 1.0
        assert le.violation([2.0]) == pytest.approx(1.0)
        assert le.violation([0.5]) == 0.0
        ge = x >= 1.0
        assert ge.violation([0.25]) == pytest.approx(0.75)
        eq = (x + 0.0).equals(1.0)
        assert eq.violation([1.3]) == pytest.approx(0.3)
