"""Tests for the ISP registry (repro.network.isp)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.isp import ISP, ISPRegistry


class TestISP:
    def test_validation(self):
        with pytest.raises(ValueError):
            ISP("bad", outage_probability=1.5)
        isp = ISP("ok", outage_probability=0.1)
        assert isp.name == "ok"


class TestRegistry:
    def test_add_and_query(self):
        registry = ISPRegistry()
        registry.add_many([ISP("a", 0.1), ISP("b", 0.2)])
        assert len(registry) == 2
        assert "a" in registry and "c" not in registry
        assert registry.get("b").outage_probability == 0.2
        assert registry.names() == ["a", "b"]
        assert {isp.name for isp in registry} == {"a", "b"}

    def test_duplicate_rejected(self):
        registry = ISPRegistry()
        registry.add(ISP("a"))
        with pytest.raises(ValueError):
            registry.add(ISP("a"))

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            ISPRegistry().get("missing")

    def test_single_outage_scenarios(self):
        registry = ISPRegistry()
        registry.add_many([ISP("a", 0.1), ISP("b", 0.1)])
        scenarios = registry.single_outage_scenarios()
        assert set() in scenarios
        assert {"a"} in scenarios and {"b"} in scenarios
        assert len(scenarios) == 3

    def test_scenario_probabilities_sum_to_one_over_all_subsets(self):
        registry = ISPRegistry()
        registry.add_many([ISP("a", 0.3), ISP("b", 0.5)])
        subsets = [set(), {"a"}, {"b"}, {"a", "b"}]
        total = sum(registry.outage_probability_of_scenario(s) for s in subsets)
        assert total == pytest.approx(1.0)
        assert registry.outage_probability_of_scenario({"a"}) == pytest.approx(0.3 * 0.5)

    def test_sample_outages_respects_probabilities(self):
        registry = ISPRegistry()
        registry.add_many([ISP("always", 1.0), ISP("never", 0.0), ISP("half", 0.5)])
        rng = np.random.default_rng(0)
        samples = [registry.sample_outages(rng) for _ in range(2000)]
        assert all("always" in s for s in samples)
        assert all("never" not in s for s in samples)
        frequency = np.mean(["half" in s for s in samples])
        assert frequency == pytest.approx(0.5, abs=0.05)
