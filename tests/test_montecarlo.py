"""The batched Monte-Carlo engine: unit, compat and differential tests.

The differential tests are the engine's correctness anchor:

* ``compat`` RNG mode must be *bit-identical* to consecutive
  :func:`repro.simulation.simulate_solution` calls on the same generator;
* the batched mode must be *statistically equivalent* to the legacy engine on
  seeded workloads -- per-demand means inside joint confidence bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import greedy_design
from repro.core.solution import OverlaySolution
from repro.network.loss import GilbertElliottLossModel
from repro.simulation import (
    FailureEvent,
    FailureSchedule,
    MonteCarloConfig,
    SimulationConfig,
    compile_path_table,
    run_monte_carlo,
    simulate_solution,
)
from repro.simulation.montecarlo import _window_counts_packed
from repro.simulation.packets import windowed_loss_matrix
from repro.workloads import RandomInstanceConfig, random_problem


def _workload(seed: int):
    problem = random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=6, num_sinks=6), rng=seed
    )
    return problem, greedy_design(problem)


def _assert_reports_identical(legacy, projected):
    for a, b in zip(legacy.demands, projected.demands):
        assert a.demand_key == b.demand_key
        assert a.paths == b.paths
        assert a.loss_rate == b.loss_rate
        assert a.worst_window_loss == b.worst_window_loss
        assert a.duplicates_discarded == b.duplicates_discarded


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloConfig(num_packets=0)
        with pytest.raises(ValueError):
            MonteCarloConfig(trials=0)
        with pytest.raises(ValueError):
            MonteCarloConfig(window=0)
        with pytest.raises(ValueError):
            MonteCarloConfig(rng_mode="fast")
        with pytest.raises(ValueError):
            MonteCarloConfig(max_batch_bytes=0)


class TestPathTable:
    def test_structure(self, tiny_problem):
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1"]}
        )
        table = compile_path_table(tiny_problem, solution, FailureSchedule(), 100, {})
        assert table.demand_keys == [("d1", "s"), ("d2", "s")]
        assert table.demand_num_paths.tolist() == [2, 1]
        assert table.demand_path_starts.tolist() == [0, 2]
        assert table.num_paths == 3
        # r1 serves both demands through one shared first-hop draw.
        assert table.num_first_hops == 2
        assert table.path_first_hop.tolist()[0] == table.path_first_hop.tolist()[2]

    def test_unserved_demand_excluded_from_table(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        table = compile_path_table(tiny_problem, solution, FailureSchedule(), 100, {})
        assert table.demand_keys == [("d1", "s")]


class TestCompatMode:
    @pytest.mark.parametrize("seed", range(10))
    def test_bit_identical_to_legacy_engine(self, seed):
        """Ten seeded workloads: compat trials replay the legacy draws exactly."""
        problem, solution = _workload(seed)
        shared = np.random.default_rng(seed)
        legacy_config = SimulationConfig(num_packets=600, window=64)
        legacy = [
            simulate_solution(problem, solution, legacy_config, rng=shared)
            for _ in range(2)
        ]
        report = run_monte_carlo(
            problem,
            solution,
            MonteCarloConfig(num_packets=600, trials=2, window=64, rng_mode="compat"),
            rng=np.random.default_rng(seed),
        )
        for trial, reference in enumerate(legacy):
            _assert_reports_identical(reference, report.to_simulation_report(trial))

    def test_compat_with_failures_and_congestion(self, tiny_problem):
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r3"]}
        )
        schedule = FailureSchedule(
            [
                FailureEvent("reflector_crash", "r1", 100, 300),
                FailureEvent("link_congestion", "d1", 200, 500, severity=0.4),
            ]
        )
        config = SimulationConfig(num_packets=800, window=100, failures=schedule)
        legacy = simulate_solution(
            tiny_problem, solution, config, rng=np.random.default_rng(11)
        )
        report = run_monte_carlo(
            tiny_problem,
            solution,
            MonteCarloConfig(
                num_packets=800, trials=1, window=100, failures=schedule, rng_mode="compat"
            ),
            rng=np.random.default_rng(11),
        )
        _assert_reports_identical(legacy, report.to_simulation_report(0))


class TestDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_batched_mean_matches_legacy(self, seed):
        """Ten seeded workloads: batched vs legacy per-demand means within CI."""
        problem, solution = _workload(seed)
        trials, legacy_runs, packets = 120, 30, 500
        report = run_monte_carlo(
            problem,
            solution,
            MonteCarloConfig(num_packets=packets, trials=trials, window=100, seed=seed),
        )
        rng = np.random.default_rng(seed + 1000)
        config = SimulationConfig(num_packets=packets, window=100)
        legacy_losses: dict = {d.key: [] for d in problem.demands}
        for _ in range(legacy_runs):
            run = simulate_solution(problem, solution, config, rng=rng)
            for row in run.demands:
                legacy_losses[row.demand_key].append(row.loss_rate)
        for demand in problem.demands:
            batched = report.result_for(demand.key)
            legacy = np.asarray(legacy_losses[demand.key])
            joint_se = np.sqrt(
                batched.loss_std**2 / trials + legacy.var(ddof=1) / legacy_runs
            )
            # 5 sigma + a floor for near-zero variance cells; with ~60
            # demand-cells per run a 4-sigma bound would flake.
            tolerance = 5.0 * joint_se + 3.0 / packets
            assert abs(batched.mean_loss - legacy.mean()) <= tolerance, demand.key

    def test_batched_mean_matches_analytic(self):
        problem, solution = _workload(3)
        trials = 300
        report = run_monte_carlo(
            problem,
            solution,
            MonteCarloConfig(num_packets=1000, trials=trials, window=100, seed=0),
        )
        for demand in problem.demands:
            result = report.result_for(demand.key)
            if result.paths == 0:
                assert result.mean_loss == 1.0
                continue
            analytic = solution.failure_probability(demand)
            se = max(result.loss_std / np.sqrt(trials), 1e-5)
            assert abs(result.mean_loss - analytic) <= 5.0 * se + 1e-3

    def test_differential_under_failure_schedule(self, tiny_problem):
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1"]}
        )
        schedule = FailureSchedule([FailureEvent("reflector_crash", "r1", 0, 400)])
        trials, legacy_runs, packets = 150, 40, 800
        report = run_monte_carlo(
            tiny_problem,
            solution,
            MonteCarloConfig(
                num_packets=packets, trials=trials, window=100, failures=schedule, seed=2
            ),
        )
        rng = np.random.default_rng(5)
        config = SimulationConfig(num_packets=packets, window=100, failures=schedule)
        legacy = [
            simulate_solution(tiny_problem, solution, config, rng=rng).mean_loss
            for _ in range(legacy_runs)
        ]
        joint_se = np.sqrt(
            np.var(report.trial_mean_loss, ddof=1) / trials
            + np.var(legacy, ddof=1) / legacy_runs
        )
        assert abs(report.mean_loss - np.mean(legacy)) <= 5.0 * joint_se + 1e-3
        # The crash covers half the session, so the worst window saturates.
        assert report.result_for(("d2", "s")).worst_window.max() == pytest.approx(1.0)

    def test_gilbert_elliott_dense_fallback(self, tiny_problem):
        """Non-Bernoulli models route through the packed dense fallback."""
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1", "r3"]}
        )
        report = run_monte_carlo(
            tiny_problem,
            solution,
            MonteCarloConfig(
                num_packets=2000,
                trials=60,
                window=200,
                loss_model=GilbertElliottLossModel(),
                seed=4,
            ),
        )
        for demand in tiny_problem.demands:
            analytic = solution.failure_probability(demand)
            result = report.result_for(demand.key)
            assert result.mean_loss == pytest.approx(analytic, abs=0.02)


class TestEngineBehaviour:
    def test_unserved_demand_loses_everything(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        report = run_monte_carlo(
            tiny_problem,
            solution,
            MonteCarloConfig(num_packets=200, trials=4, window=40, seed=0),
        )
        missing = report.result_for(("d2", "s"))
        assert missing.paths == 0
        assert missing.loss.tolist() == [1.0] * 4
        assert missing.worst_window.tolist() == [1.0] * 4
        assert not report.to_simulation_report(0).result_for(("d2", "s")).meets_threshold

    def test_determinism_and_chunking(self, tiny_problem):
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1"]}
        )
        config = dict(num_packets=500, trials=16, window=56, seed=9)
        a = run_monte_carlo(tiny_problem, solution, MonteCarloConfig(**config))
        b = run_monte_carlo(tiny_problem, solution, MonteCarloConfig(**config))
        assert np.array_equal(a.loss_matrix, b.loss_matrix)
        # A tiny batch budget forces many chunks; results stay valid (but are
        # a different random stream -- chunk layout is part of the contract).
        tiny_batches = run_monte_carlo(
            tiny_problem,
            solution,
            MonteCarloConfig(**config, max_batch_bytes=10_000),
        )
        assert tiny_batches.loss_matrix.shape == a.loss_matrix.shape
        assert 0.0 <= tiny_batches.mean_loss <= 1.0

    def test_chunk_boundaries_shift_the_random_stream(self, tiny_problem):
        # Regression pinning the documented max_batch_bytes caveat: the same
        # seed under a different chunk layout is a *different* random stream.
        # (The streaming engine is immune -- per-tile SeedSequence streams --
        # see tests/test_streaming.py::TestDeterminismContract.)
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1"]}
        )
        config = dict(num_packets=500, trials=16, window=56, seed=9)
        one_chunk = run_monte_carlo(
            tiny_problem, solution, MonteCarloConfig(**config, max_batch_bytes=2**40)
        )
        many_chunks = run_monte_carlo(
            tiny_problem, solution, MonteCarloConfig(**config, max_batch_bytes=10_000)
        )
        assert not np.array_equal(one_chunk.loss_matrix, many_chunks.loss_matrix)

    def test_report_accessors(self, tiny_problem):
        solution = OverlaySolution.from_assignments(
            tiny_problem, {("d1", "s"): ["r1", "r2"], ("d2", "s"): ["r1"]}
        )
        report = run_monte_carlo(
            tiny_problem,
            solution,
            MonteCarloConfig(num_packets=400, trials=8, window=80, seed=1),
        )
        assert report.loss_matrix.shape == (2, 8)
        assert report.trial_mean_loss.shape == (8,)
        assert 0.0 <= report.mean_loss <= report.max_loss <= 1.0
        assert report.mean_loss_ci_halfwidth >= 0.0
        summary = report.summary()
        assert summary["trials"] == 8 and summary["num_demands"] == 2
        with pytest.raises(KeyError):
            report.result_for(("missing", "s"))
        with pytest.raises(IndexError):
            report.to_simulation_report(8)

    def test_window_counts_packed_matches_unpacked(self):
        rng = np.random.default_rng(0)
        for packets, window in ((256, 64), (250, 64), (250, 60), (100, 8), (97, 16)):
            lost = rng.random((3, 5, packets)) < 0.2
            packed = np.packbits(lost, axis=-1, bitorder="little")
            counts = _window_counts_packed(packed, packets, window)
            expected = windowed_loss_matrix(lost, window)
            sizes = np.diff(
                np.append(np.arange(0, packets, window), packets)
            )
            assert np.array_equal(counts, (expected * sizes).round().astype(np.int64))

    def test_non_byte_aligned_window(self, tiny_problem):
        solution = OverlaySolution.from_assignments(tiny_problem, {("d1", "s"): ["r1"]})
        report = run_monte_carlo(
            tiny_problem,
            solution,
            MonteCarloConfig(num_packets=500, trials=6, window=125, seed=3),
        )
        assert (report.result_for(("d1", "s")).worst_window <= 1.0).all()
