"""Reproduction of the paper's Figure 3: the integrality gap with set constraints.

The example: a small flow network where all edge capacities are as drawn and,
additionally, the *set* of edges {a->b, p->q} has a joint capacity of 3.  The
maximum integral flow is 3, but a fractional flow of 3.5 exists (send 2 on
s->a and 1.5 on s->p, split at a: 0.5 to q, 1.5 to b).  This is why the
Section-6 extensions cannot be rounded through plain min-cost flow and need
the Srinivasan--Teo path formulation instead.

We reproduce the gap exactly using the LP substrate over the path
formulation: relaxing integrality gives 3.5, forcing integral flows caps at 3.
The corresponding benchmark is ``benchmarks/bench_fig3_integrality_gap.py``.
"""

from __future__ import annotations

from itertools import product

import pytest

from repro.lp import LinearExpr, LinearProgram, Objective, solve_lp

# The network of Figure 3: s -> {a, p}; a -> {b, q}; p -> q; {b, q} -> t.
EDGES = {
    ("s", "a"): 2.0,
    ("s", "p"): 2.0,
    ("a", "b"): 2.0,
    ("a", "q"): 1.0,
    ("p", "q"): 2.0,
    ("b", "t"): 2.0,
    ("q", "t"): 2.0,
}
#: The entangled set constraint: edges {a->b, p->q} jointly carry at most 3.
ENTANGLED = (("a", "b"), ("p", "q"))
ENTANGLED_CAPACITY = 3.0
#: The three s->t paths of the example.
PATHS = (
    (("s", "a"), ("a", "b"), ("b", "t")),
    (("s", "a"), ("a", "q"), ("q", "t")),
    (("s", "p"), ("p", "q"), ("q", "t")),
)


def _solve_max_flow(integral: bool) -> float:
    """Maximise total path flow subject to edge + entangled-set capacities.

    With three paths and tiny capacities the integral optimum can be found by
    brute force; the fractional optimum comes from the LP.
    """
    if integral:
        best = 0.0
        # Integral flows: integer flow on every path (capacities are <= 3).
        for assignment in product(range(4), repeat=len(PATHS)):
            flows = [float(v) for v in assignment]
            if _feasible(flows):
                best = max(best, sum(flows))
        return best
    model = LinearProgram(objective_sense=Objective.MAXIMIZE)
    path_vars = [model.add_variable(f"p{i}") for i in range(len(PATHS))]
    for edge, capacity in EDGES.items():
        expr = LinearExpr.sum(
            path_vars[i] for i, path in enumerate(PATHS) if edge in path
        )
        if expr.coeffs:
            model.add_constraint(expr <= capacity)
    entangled_expr = LinearExpr.sum(
        path_vars[i]
        for i, path in enumerate(PATHS)
        if any(edge in path for edge in ENTANGLED)
    )
    model.add_constraint(entangled_expr <= ENTANGLED_CAPACITY)
    model.set_objective(LinearExpr.sum(path_vars))
    solution = solve_lp(model)
    assert solution.is_optimal
    return solution.objective


def _feasible(path_flows: list[float]) -> bool:
    for edge, capacity in EDGES.items():
        used = sum(
            flow for flow, path in zip(path_flows, PATHS) if edge in path
        )
        if used > capacity + 1e-9:
            return False
    entangled_used = sum(
        flow
        for flow, path in zip(path_flows, PATHS)
        if any(edge in path for edge in ENTANGLED)
    )
    return entangled_used <= ENTANGLED_CAPACITY + 1e-9


class TestFigure3:
    def test_fractional_max_flow_is_three_point_five(self):
        assert _solve_max_flow(integral=False) == pytest.approx(3.5, abs=1e-6)

    def test_integral_max_flow_is_three(self):
        assert _solve_max_flow(integral=True) == pytest.approx(3.0)

    def test_gap_exists(self):
        fractional = _solve_max_flow(integral=False)
        integral = _solve_max_flow(integral=True)
        assert fractional > integral + 0.4

    def test_paper_fractional_witness_is_feasible(self):
        """The specific fractional flow described in the paper (2 + 1.5, split 0.5/1.5)."""
        # Path flows: s-a-b-t = 1.5, s-a-q-t = 0.5, s-p-q-t = 1.5.
        witness = [1.5, 0.5, 1.5]
        assert _feasible(witness)
        assert sum(witness) == pytest.approx(3.5)

    def test_without_entangled_constraint_flow_is_four(self):
        """Dropping the set constraint removes the gap (sanity check)."""
        model = LinearProgram(objective_sense=Objective.MAXIMIZE)
        path_vars = [model.add_variable(f"p{i}") for i in range(len(PATHS))]
        for edge, capacity in EDGES.items():
            expr = LinearExpr.sum(
                path_vars[i] for i, path in enumerate(PATHS) if edge in path
            )
            if expr.coeffs:
                model.add_constraint(expr <= capacity)
        model.set_objective(LinearExpr.sum(path_vars))
        solution = solve_lp(model)
        assert solution.objective == pytest.approx(4.0, abs=1e-6)
