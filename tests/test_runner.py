"""Tests for the experiment-orchestration subsystem (repro.analysis.runner)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import run_size_sweep
from repro.analysis.runner import (
    SCHEMA_VERSION,
    TIMING_SUFFIX,
    BenchRecord,
    MetricPolicy,
    ScenarioSpec,
    aggregate_rows,
    classify_drift,
    compare_records,
    execute_tasks,
    get_scenario,
    register_scenario,
    resolve_jobs,
    run_scenario,
    scenario_ids,
)
from repro.cli import main


def _square_task(task: dict) -> dict:
    return {"seed": task["seed"], "value": float(task["seed"] ** 2)}


def _strip_timings(rows: list[dict]) -> list[dict]:
    return [
        {key: value for key, value in row.items() if not key.endswith(TIMING_SUFFIX)}
        for row in rows
    ]


def _make_record(**overrides) -> BenchRecord:
    base = dict(
        bench_id="X",
        scenario_id="x",
        title="synthetic",
        master_seed=0,
        smoke=False,
        jobs=1,
        rows=[{"metric_a": 1.0, "run_seconds": 0.5}],
        aggregates={"metric_a": {"count": 1, "min": 1.0, "mean": 1.0, "max": 1.0}},
        timings={},
        metrics={},
        environment={},
        created_at="2026-07-26T00:00:00+00:00",
        elapsed_seconds=0.1,
    )
    base.update(overrides)
    return BenchRecord(**base)


class TestExecutor:
    def test_inline_and_parallel_results_are_identical(self):
        tasks = [{"seed": seed} for seed in range(8)]
        serial = execute_tasks(_square_task, tasks, jobs=1)
        parallel = execute_tasks(_square_task, tasks, jobs=2)
        assert serial == parallel
        assert [row["seed"] for row in serial] == list(range(8))

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs("3") == 3
        assert resolve_jobs("auto") >= 1
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_run_scenario_parallel_matches_serial_bit_for_bit(self):
        spec = get_scenario("tiny")
        serial = run_scenario(spec, jobs=1, master_seed=42, smoke=True)
        parallel = run_scenario(spec, jobs=2, master_seed=42, smoke=True)
        assert _strip_timings(serial.rows) == _strip_timings(parallel.rows)
        assert serial.aggregates == parallel.aggregates
        assert serial.metrics == parallel.metrics

    def test_master_seed_changes_the_seed_block(self):
        spec = get_scenario("tiny")
        a = run_scenario(spec, jobs=1, master_seed=0, smoke=True)
        b = run_scenario(spec, jobs=1, master_seed=99, smoke=True)
        assert [row["seed"] for row in a.rows] != [row["seed"] for row in b.rows]

    def test_size_sweep_parallel_matches_serial(self):
        serial = run_size_sweep(sizes=[(1, 4, 4), (1, 5, 6)], seeds=[0, 1], jobs=1)
        parallel = run_size_sweep(sizes=[(1, 4, 4), (1, 5, 6)], seeds=[0, 1], jobs=2)
        assert _strip_timings(serial.rows) == _strip_timings(parallel.rows)


class TestBenchRecordSchema:
    def test_round_trip_through_json_file(self, tmp_path):
        record = run_scenario(get_scenario("f3"), jobs=1, master_seed=0, smoke=True)
        path = record.save(tmp_path / "BENCH_F3.json")
        loaded = BenchRecord.load(path)
        assert loaded.to_dict() == record.to_dict()
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.metrics["fractional_max_flow"] == pytest.approx(3.5, abs=1e-6)

    def test_unknown_schema_version_is_rejected(self):
        data = _make_record().to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            BenchRecord.from_dict(data)

    def test_environment_metadata_is_recorded(self):
        record = run_scenario(get_scenario("f3"), jobs=1, smoke=True)
        assert record.environment["python"]
        assert "numpy" in record.environment
        assert "git_commit" in record.environment

    def test_aggregates_skip_timings_and_non_numeric(self):
        rows = [
            {"a": 1.0, "b": "text", "run_seconds": 1.0, "flag": True},
            {"a": 3.0, "b": "text", "run_seconds": 2.0, "flag": False},
        ]
        aggregates = aggregate_rows(rows, ["a", "b", "flag", "missing"])
        assert aggregates["a"] == {"count": 2, "min": 1.0, "mean": 2.0, "max": 3.0}
        assert "b" not in aggregates  # strings are not aggregated
        assert "flag" not in aggregates  # booleans are not metrics
        assert "missing" not in aggregates


class TestDriftClassification:
    def test_lower_is_better_directions(self):
        policy = MetricPolicy("lower", rel_tol=0.1)
        assert classify_drift(policy, 100.0, 120.0)[0] == "regression"
        assert classify_drift(policy, 100.0, 80.0)[0] == "improvement"
        assert classify_drift(policy, 100.0, 105.0)[0] == "neutral"

    def test_higher_is_better_directions(self):
        policy = MetricPolicy("higher", rel_tol=0.1)
        assert classify_drift(policy, 0.9, 0.5)[0] == "regression"
        assert classify_drift(policy, 0.5, 0.9)[0] == "improvement"

    def test_equal_direction_flags_any_drift(self):
        policy = MetricPolicy("equal", rel_tol=0.0, abs_tol=0.5)
        assert classify_drift(policy, 10.0, 11.0)[0] == "regression"
        assert classify_drift(policy, 10.0, 9.0)[0] == "regression"
        assert classify_drift(policy, 10.0, 10.4)[0] == "neutral"

    def test_tolerance_boundary_is_neutral(self):
        policy = MetricPolicy("lower", rel_tol=0.0, abs_tol=1.0)
        # Drift exactly at the tolerance is neutral; just beyond regresses.
        assert classify_drift(policy, 10.0, 11.0)[0] == "neutral"
        assert classify_drift(policy, 10.0, 11.0000001)[0] == "regression"

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            MetricPolicy("sideways")

    def test_missing_metric_in_current_is_a_regression(self):
        baseline = _make_record()
        current = _make_record(rows=[], aggregates={})
        report = compare_records(current, baseline, {"metric_a": MetricPolicy("lower")})
        assert [d.classification for d in report.drifts] == ["missing"]
        assert report.has_regressions

    def test_new_metric_in_current_is_neutral(self):
        baseline = _make_record(aggregates={})
        current = _make_record()
        report = compare_records(current, baseline, {"metric_a": MetricPolicy("lower")})
        assert [d.classification for d in report.drifts] == ["new"]
        assert not report.has_regressions

    def test_unlisted_metric_defaults_to_equal_policy(self):
        baseline = _make_record()
        current = _make_record(
            aggregates={"metric_a": {"count": 1, "min": 2.0, "mean": 2.0, "max": 2.0}}
        )
        report = compare_records(current, baseline, policies={})
        assert report.drifts[0].classification == "regression"

    def test_smoke_mismatch_is_incomparable(self):
        baseline = _make_record(smoke=True)
        current = _make_record(smoke=False)
        with pytest.raises(ValueError, match="smoke"):
            compare_records(current, baseline)

    def test_scenario_policies_used_by_default(self):
        # The registered tiny scenario declares total_cost as lower-is-better.
        record = run_scenario(get_scenario("tiny"), jobs=1, smoke=True)
        cheaper = BenchRecord.from_dict(record.to_dict())
        cheaper.aggregates = json.loads(json.dumps(cheaper.aggregates))
        cheaper.aggregates["total_cost"]["mean"] *= 0.5
        report = compare_records(record, cheaper)
        drift = {d.metric: d.classification for d in report.drifts}
        assert drift["total_cost"] == "regression"


def _failing_task(task: dict) -> dict:
    return {"value": 1.0}


register_scenario(
    ScenarioSpec(
        scenario_id="_always_failing",
        title="synthetic scenario whose thresholds always fail",
        task_fn=_failing_task,
        make_tasks=lambda master_seed, smoke: [{}],
        validate=lambda record: ["synthetic threshold failure"],
    )
)


class TestBenchCli:
    def test_list_shows_registered_scenarios(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for sid in ("t1", "t5", "c1", "f3", "tiny"):
            assert sid in out

    def test_unknown_suite_is_a_usage_error(self, capsys):
        assert main(["bench", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_run_writes_record_and_baseline(self, tmp_path, capsys):
        out = tmp_path / "results"
        baseline = tmp_path / "baseline.json"
        code = main(
            [
                "bench",
                "--suite",
                "tiny,f3",
                "--smoke",
                "--jobs",
                "2",
                "--out",
                str(out),
                "--baseline-out",
                str(baseline),
            ]
        )
        assert code == 0
        assert (out / "BENCH_TINY.json").exists()
        assert (out / "BENCH_F3.json").exists()
        assert (out / "TINY_pipeline.txt").exists()
        record = BenchRecord.load(out / "BENCH_TINY.json")
        assert record.smoke and record.jobs == 2
        suite = json.loads(baseline.read_text())
        assert set(suite["records"]) == {"tiny", "f3"}

    def test_jobs_parallel_matches_serial_artifact(self, tmp_path, capsys):
        for jobs in ("1", "2"):
            code = main(
                [
                    "bench",
                    "--suite",
                    "tiny",
                    "--smoke",
                    "--jobs",
                    jobs,
                    "--out",
                    str(tmp_path / f"jobs{jobs}"),
                ]
            )
            assert code == 0
        one = BenchRecord.load(tmp_path / "jobs1" / "BENCH_TINY.json")
        four = BenchRecord.load(tmp_path / "jobs2" / "BENCH_TINY.json")
        assert one.aggregates == four.aggregates
        assert one.metrics == four.metrics

    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "bench",
                    "--suite",
                    "tiny",
                    "--smoke",
                    "--out",
                    str(tmp_path / "a"),
                    "--baseline-out",
                    str(baseline),
                ]
            )
            == 0
        )
        code = main(
            [
                "bench",
                "--suite",
                "tiny",
                "--smoke",
                "--out",
                str(tmp_path / "b"),
                "--compare-to",
                str(baseline),
            ]
        )
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_fake_regression_fails_the_run(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "bench",
                    "--suite",
                    "tiny",
                    "--smoke",
                    "--out",
                    str(tmp_path / "a"),
                    "--baseline-out",
                    str(baseline),
                ]
            )
            == 0
        )
        # Inject a seeded fake regression: pretend the baseline was cheaper.
        document = json.loads(baseline.read_text())
        document["records"]["tiny"]["aggregates"]["total_cost"]["mean"] *= 0.5
        baseline.write_text(json.dumps(document))
        code = main(
            [
                "bench",
                "--suite",
                "tiny",
                "--smoke",
                "--out",
                str(tmp_path / "b"),
                "--compare-to",
                str(baseline),
            ]
        )
        assert code == 3
        assert "regression" in capsys.readouterr().out

    def test_threshold_failures_exit_one_unless_disabled(self, tmp_path, capsys):
        args = ["bench", "--suite", "_always_failing", "--out", str(tmp_path)]
        assert main(args) == 1
        assert "synthetic threshold failure" in capsys.readouterr().err
        assert main([*args, "--no-validate"]) == 0

    def test_scenario_catalogue_is_complete(self):
        assert {
            "t1", "t2", "t3", "t4", "t5", "t5_sparse", "t6", "t7",
            "c1", "c2", "f1", "f2", "f3", "tiny",
        } <= set(scenario_ids())
