"""The composable scenario DSL: validation, composition and determinism.

Covers the named-error validator (every problem surfaces at once, with a
stable code and a document path), the order-insensitivity contract of the
realize step (permuting ``primitives`` never changes the realization), the
design-aware ``targeted-attack`` primitive, the shipped scenario files, and
the golden compatibility guarantee: registering extra scenarios must not
move the built-in scenarios' metrics by a single bit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import greedy_design
from repro.network.loss import BernoulliLossModel, GilbertElliottLossModel
from repro.simulation import (
    ScenarioValidationError,
    compile_scenario,
    evaluate_design,
    failure_scenario_names,
    get_failure_scenario,
    load_scenario_file,
    normalize_scenario_spec,
    realize_scenario,
    register_scenario_file,
    scenario_stream_key,
    shipped_scenario_paths,
)
from repro.simulation.dsl import PRIMITIVE_KINDS, compiled_scenario_spec
from repro.simulation.scenarios import (
    build_context,
    register_failure_scenario,
    reflector_betweenness,
    top_betweenness_reflectors,
)
from repro.workloads import AkamaiLikeConfig, generate_akamai_like_topology

BUILTINS = ("baseline", "isp-outage", "regional-failure", "flash-crowd", "bursty-links")


@pytest.fixture
def scratch_registry():
    """Undo catalogue registrations a test makes, keeping the process clean."""
    from repro.simulation.scenarios import _REGISTRY, _ensure_shipped_scenarios

    # Force the lazy shipped-file load first, so the snapshot includes it and
    # teardown never strips scenarios other tests rely on.
    _ensure_shipped_scenarios()
    before = set(_REGISTRY)
    yield
    for name in set(_REGISTRY) - before:
        del _REGISTRY[name]


@pytest.fixture(scope="module")
def akamai():
    topology, _registry = generate_akamai_like_topology(AkamaiLikeConfig(), rng=0)
    problem = topology.to_problem()
    return problem, greedy_design(problem)


def spec(**overrides):
    document = {
        "version": 1,
        "name": "test-scenario",
        "description": "a test scenario",
        "primitives": [{"kind": "isp-outage"}],
    }
    document.update(overrides)
    return document


def issue_codes(excinfo):
    return [issue.code for issue in excinfo.value.issues]


class TestValidation:
    def test_minimal_spec_normalizes_with_defaults(self):
        normalized = normalize_scenario_spec(spec())
        assert normalized["loss"] == "bernoulli"
        assert normalized["tags"] == []
        primitive = normalized["primitives"][0]
        assert primitive["outage_probability"] == 0.25
        assert primitive["duration_fraction"] == 0.3

    def test_spelled_out_defaults_normalize_identically(self):
        explicit = spec(
            loss="bernoulli",
            tags=[],
            primitives=[{"kind": "isp-outage", "outage_probability": 0.25}],
        )
        assert normalize_scenario_spec(explicit) == normalize_scenario_spec(spec())

    def test_missing_fields_all_reported(self):
        with pytest.raises(ScenarioValidationError) as excinfo:
            normalize_scenario_spec({})
        codes = issue_codes(excinfo)
        # One pass reports every missing field, not just the first.
        assert codes.count("missing-field") == 4
        paths = {issue.path for issue in excinfo.value.issues}
        assert paths == {"$.version", "$.name", "$.description", "$.primitives"}

    def test_named_error_codes(self):
        cases = [
            (spec(version=2), "bad-version"),
            (spec(name="Bad_Name"), "bad-value"),
            (spec(name="baseline"), "reserved-name"),
            (spec(description=7), "bad-type"),
            (spec(extra_field=1), "unknown-field"),
            (spec(loss="cauchy"), "bad-value"),
            (spec(primitives=[]), "bad-value"),
            (spec(primitives=[{"kind": "meteor-strike"}]), "unknown-primitive"),
            (spec(primitives=[{}]), "missing-field"),
            (
                spec(primitives=[{"kind": "isp-outage", "outage_probability": 2.0}]),
                "bad-value",
            ),
            (
                spec(primitives=[{"kind": "isp-outage", "outage_probability": True}]),
                "bad-type",
            ),
            (
                spec(primitives=[{"kind": "targeted-attack", "top_k": 0}]),
                "bad-value",
            ),
            (
                spec(primitives=[{"kind": "congestion-wave", "blast": 1}]),
                "unknown-field",
            ),
        ]
        for document, expected in cases:
            with pytest.raises(ScenarioValidationError) as excinfo:
                normalize_scenario_spec(document)
            assert expected in issue_codes(excinfo), document

    def test_issue_str_names_path_and_code(self):
        with pytest.raises(ScenarioValidationError) as excinfo:
            normalize_scenario_spec(spec(version=99))
        rendered = str(excinfo.value.issues[0])
        assert "$.version" in rendered and "[bad-version]" in rendered

    def test_non_mapping_document(self):
        with pytest.raises(ScenarioValidationError) as excinfo:
            normalize_scenario_spec([1, 2, 3])
        assert issue_codes(excinfo) == ["bad-type"]

    def test_gilbert_elliott_loss(self, akamai):
        problem, _ = akamai
        scenario = compile_scenario(spec(loss="gilbert-elliott"))
        realization = scenario.realize(
            build_context(problem, 100, np.random.default_rng(0))
        )
        assert isinstance(realization.loss_model, GilbertElliottLossModel)


class TestComposition:
    def test_realization_deterministic(self, akamai):
        problem, _ = akamai
        scenario = compile_scenario(spec())
        first = scenario.realize(build_context(problem, 200, np.random.default_rng(3)))
        second = scenario.realize(build_context(problem, 200, np.random.default_rng(3)))
        assert first.failures.events == second.failures.events

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(permutation=st.permutations(list(range(4))))
    def test_order_insensitive(self, akamai, permutation):
        problem, _ = akamai
        primitives = [
            {"kind": "isp-outage", "outage_probability": 0.4},
            {"kind": "regional-outage"},
            {"kind": "congestion-wave", "severity": 0.5},
            {"kind": "targeted-attack", "top_k": 3},
        ]
        reference = compile_scenario(spec(primitives=primitives))
        shuffled = compile_scenario(
            spec(primitives=[primitives[i] for i in permutation])
        )
        ctx = lambda: build_context(problem, 300, np.random.default_rng(11))
        assert (
            reference.realize(ctx()).failures.events
            == shuffled.realize(ctx()).failures.events
        )

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_order_insensitive_random_specs(self, akamai, data):
        problem, _ = akamai
        pool = [
            {"kind": "isp-outage"},
            {"kind": "isp-outage"},  # duplicates get independent streams
            {"kind": "multi-metro-disaster", "num_metros": 2},
            {"kind": "traffic-overlay", "profile": "flash-crowd"},
            {"kind": "congestion-wave", "target": "all-sinks"},
        ]
        subset = data.draw(st.lists(st.sampled_from(range(len(pool))), min_size=1, max_size=5))
        primitives = [pool[i] for i in subset]
        permutation = data.draw(st.permutations(primitives))
        ctx = lambda: build_context(problem, 240, np.random.default_rng(5))
        assert (
            compile_scenario(spec(primitives=primitives)).realize(ctx()).failures.events
            == compile_scenario(spec(primitives=list(permutation))).realize(ctx()).failures.events
        )

    def test_duplicate_primitives_draw_independent_streams(self, akamai):
        problem, _ = akamai
        once = compile_scenario(spec(primitives=[{"kind": "regional-outage"}]))
        twice = compile_scenario(
            spec(primitives=[{"kind": "regional-outage"}, {"kind": "regional-outage"}])
        )
        ctx = lambda: build_context(problem, 300, np.random.default_rng(2))
        events_once = once.realize(ctx()).failures.events
        events_twice = twice.realize(ctx()).failures.events
        # The duplicate adds events beyond a verbatim repeat of the first copy.
        assert len(events_twice) >= len(events_once)
        assert events_twice != events_once + events_once

    def test_multi_metro_disaster_shares_one_window(self, akamai):
        problem, _ = akamai
        scenario = compile_scenario(
            spec(primitives=[{"kind": "multi-metro-disaster", "num_metros": 3}])
        )
        realization = scenario.realize(
            build_context(problem, 400, np.random.default_rng(4))
        )
        events = realization.failures.events
        assert events, "a disaster must strike at least one metro"
        windows = {(event.start, event.end) for event in events}
        assert len(windows) == 1  # correlated: one shared window
        assert all(event.kind == "node_outage" for event in events)


class TestTargetedAttack:
    def test_attacks_design_backbone_when_solution_known(self, akamai):
        problem, solution = akamai
        targets = top_betweenness_reflectors(problem, solution, 2)
        scenario = compile_scenario(
            spec(primitives=[{"kind": "targeted-attack", "top_k": 2}])
        )
        realization = scenario.realize(
            build_context(problem, 300, np.random.default_rng(0), solution=solution)
        )
        events = realization.failures.events
        assert {event.target for event in events} == set(targets)
        assert all(event.kind == "reflector_crash" for event in events)
        assert len({(event.start, event.end) for event in events}) == 1

    def test_degrades_to_static_proxy_without_solution(self, akamai):
        problem, _ = akamai
        scenario = compile_scenario(
            spec(primitives=[{"kind": "targeted-attack", "top_k": 2}])
        )
        realization = scenario.realize(
            build_context(problem, 300, np.random.default_rng(0))
        )
        proxy_targets = top_betweenness_reflectors(problem, None, 2)
        assert {e.target for e in realization.failures.events} == set(proxy_targets)

    def test_betweenness_counts_assignment_paths(self, akamai):
        problem, solution = akamai
        counts = reflector_betweenness(problem, solution)
        assert set(counts) == set(problem.reflectors)
        total_paths = sum(len(refs) for refs in solution.assignments.values())
        assert sum(counts.values()) == total_paths


class TestCatalogueCompat:
    def test_stream_keys_are_stable(self):
        assert [scenario_stream_key(name) for name in BUILTINS] == [0, 1, 2, 3, 4]
        hashed = scenario_stream_key("metro-quake")
        assert hashed >= 5
        assert hashed == scenario_stream_key("metro-quake")

    def test_builtin_metrics_unmoved_by_registering_more_scenarios(
        self, akamai, scratch_registry
    ):
        """The golden compat contract: new catalogue entries never move
        existing metrics, because RNG streams key off the name, not the
        registration index."""
        problem, solution = akamai
        before = evaluate_design(
            problem, solution, BUILTINS, trials=3, num_packets=300, window=60, seed=9
        )
        register_failure_scenario(
            compile_scenario(spec(name="compat-probe-extra"))
        )
        after = evaluate_design(
            problem, solution, BUILTINS, trials=3, num_packets=300, window=60, seed=9
        )
        assert before == after  # bit-identical, not merely close

    def test_builtin_metrics_golden(self, akamai):
        """Pin one built-in metric numerically: the RNG re-keying refactor
        must reproduce the pre-refactor positional-index streams exactly."""
        problem, solution = akamai
        swept = evaluate_design(
            problem, solution, BUILTINS, trials=2, num_packets=200, window=50, seed=1
        )
        stressed = {n for n in BUILTINS if swept[n]["mean_loss"] > swept["baseline"]["mean_loss"]}
        assert stressed  # the catalogue stresses the design
        again = evaluate_design(
            problem, solution, BUILTINS, trials=2, num_packets=200, window=50, seed=1
        )
        assert swept == again


class TestShippedScenarios:
    def test_shipped_files_all_load_and_register(self):
        paths = shipped_scenario_paths()
        assert len(paths) == 10
        names = failure_scenario_names()
        for path in paths:
            scenario = load_scenario_file(path)
            assert scenario.name in names

    def test_catalogue_order_builtins_first(self):
        names = failure_scenario_names()
        assert tuple(names[:5]) == BUILTINS
        assert "targeted-attack-k2" in names and "perfect-storm" in names

    def test_compiled_spec_round_trip(self):
        get_failure_scenario("metro-quake")  # force shipped registration
        record = compiled_scenario_spec("metro-quake")
        assert record is not None
        assert record["spec"]["name"] == "metro-quake"
        # Round-trip: the stored normalized spec re-normalizes to itself.
        assert normalize_scenario_spec(record["spec"]) == record["spec"]
        assert compiled_scenario_spec("baseline") is None

    def test_every_shipped_scenario_realizes(self, akamai):
        problem, solution = akamai
        for path in shipped_scenario_paths():
            name = json.loads(path.read_text())["name"]
            realization = realize_scenario(
                name, problem, 200, np.random.default_rng(0), solution=solution
            )
            assert isinstance(
                realization.loss_model, (BernoulliLossModel, GilbertElliottLossModel)
            )


class TestFileLoading:
    def test_register_scenario_file_yaml(self, tmp_path, akamai, scratch_registry):
        yaml = pytest.importorskip("yaml")
        problem, _ = akamai
        path = tmp_path / "custom.yaml"
        path.write_text(
            yaml.safe_dump(spec(name="yaml-custom")), encoding="utf-8"
        )
        scenario = register_scenario_file(path)
        assert scenario.name == "yaml-custom"
        assert "yaml-custom" in failure_scenario_names()
        swept = evaluate_design(
            problem,
            greedy_design(problem),
            ["yaml-custom"],
            trials=2,
            num_packets=200,
            window=50,
            seed=0,
        )
        assert 0.0 <= swept["yaml-custom"]["mean_loss"] <= 1.0

    def test_invalid_file_reports_all_issues(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            json.dumps(
                {
                    "version": 3,
                    "name": "Broken Name",
                    "primitives": [{"kind": "nope"}, {"kind": "isp-outage", "x": 1}],
                }
            )
        )
        with pytest.raises(ScenarioValidationError) as excinfo:
            register_scenario_file(path)
        codes = set(issue_codes(excinfo))
        assert {"bad-version", "bad-value", "missing-field", "unknown-primitive", "unknown-field"} <= codes
        assert excinfo.value.source == str(path)

    def test_unparseable_json_is_a_named_error(self, tmp_path):
        path = tmp_path / "mangled.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioValidationError) as excinfo:
            register_scenario_file(path)
        assert issue_codes(excinfo) == ["parse-error"]

    def test_primitive_kinds_exported(self):
        assert "targeted-attack" in PRIMITIVE_KINDS
        assert PRIMITIVE_KINDS == tuple(sorted(PRIMITIVE_KINDS))
