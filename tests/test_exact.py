"""Tests for the exhaustive exact solver (repro.baselines.exact)."""

from __future__ import annotations

import pytest

from repro.baselines import greedy_design
from repro.baselines.exact import SearchSpaceTooLarge, exact_design
from repro.core.algorithm import DesignParameters, design_overlay, fractional_lower_bound
from repro.core.problem import OverlayDesignProblem
from repro.workloads import RandomInstanceConfig, random_problem


def tiny_instance(seed: int) -> OverlayDesignProblem:
    return random_problem(
        RandomInstanceConfig(
            num_streams=1,
            num_reflectors=4,
            num_sinks=3,
            demands_per_sink=1,
            min_candidates_per_demand=3,
        ),
        rng=seed,
    )


class TestExactDesign:
    def test_exact_is_feasible(self, tiny_problem):
        result = exact_design(tiny_problem)
        for demand in tiny_problem.demands:
            assert result.solution.weight_satisfaction(demand) >= 1.0 - 1e-9
        assert result.solution.max_fanout_factor() <= 1.0 + 1e-9
        assert result.nodes_explored > 0

    def test_exact_cost_between_lp_bound_and_heuristics(self, tiny_problem):
        result = exact_design(tiny_problem)
        assert result.optimal_cost >= fractional_lower_bound(tiny_problem) - 1e-6
        assert result.optimal_cost <= greedy_design(tiny_problem).total_cost() + 1e-6

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_lower_bounds_all_feasible_designs(self, seed):
        problem = tiny_instance(seed)
        result = exact_design(problem)
        greedy = greedy_design(problem)
        if all(greedy.weight_satisfaction(d) >= 1.0 - 1e-9 for d in problem.demands):
            assert result.optimal_cost <= greedy.total_cost() + 1e-6
        assert result.optimal_cost >= fractional_lower_bound(problem) - 1e-6

    def test_algorithm_approximation_factor_vs_true_optimum(self):
        """The paper's guarantee measured against OPT, not just the LP bound."""
        problem = tiny_instance(1)
        exact = exact_design(problem)
        report = design_overlay(
            problem, DesignParameters(seed=0, repair_shortfall=True)
        )
        ratio = report.solution.total_cost() / exact.optimal_cost
        assert ratio <= 2.0 * report.rounded.multiplier + 1e-9

    def test_respects_known_optimum_on_handcrafted_instance(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("good", cost=5.0, fanout=2)
        problem.add_reflector("decoy", cost=1.0, fanout=2)
        problem.add_sink("d")
        problem.add_stream_edge("s", "good", 0.01, 0.5)
        problem.add_stream_edge("s", "decoy", 0.30, 0.1)
        problem.add_delivery_edge("good", "d", 0.01, 0.5)
        problem.add_delivery_edge("decoy", "d", 0.30, 0.1)
        # 0.95 needs weight ~3.0; the decoy path (failure ~0.51) gives only ~0.67,
        # so the only feasible single-reflector choice is 'good'.
        problem.add_demand("d", "s", success_threshold=0.95)
        result = exact_design(problem)
        assert result.solution.built_reflectors == {"good"}
        assert result.optimal_cost == pytest.approx(5.0 + 0.5 + 0.5)

    def test_infeasible_demand_raises(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=1)
        problem.add_sink("d")
        problem.add_stream_edge("s", "r", 0.4, 0.1)
        problem.add_delivery_edge("r", "d", 0.4, 0.1)
        problem.add_demand("d", "s", success_threshold=0.999)
        with pytest.raises(ValueError):
            exact_design(problem)

    def test_fanout_conflict_detected(self):
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        problem.add_reflector("r", cost=1.0, fanout=1)
        problem.add_sink("d1")
        problem.add_sink("d2")
        problem.add_stream_edge("s", "r", 0.01, 0.1)
        problem.add_delivery_edge("r", "d1", 0.02, 0.1)
        problem.add_delivery_edge("r", "d2", 0.02, 0.1)
        problem.add_demand("d1", "s", 0.9)
        problem.add_demand("d2", "s", 0.9)
        with pytest.raises(ValueError):
            exact_design(problem)

    def test_search_space_guard(self):
        problem = random_problem(
            RandomInstanceConfig(num_streams=2, num_reflectors=10, num_sinks=12), rng=0
        )
        with pytest.raises(SearchSpaceTooLarge):
            exact_design(problem, max_subset_size=4, max_search_nodes=100)


class TestCandidateDedup:
    """Regression: duplicate candidate entries must not inflate the search."""

    def _two_reflector_problem(self) -> OverlayDesignProblem:
        problem = OverlayDesignProblem()
        problem.add_stream("s")
        for name in ("r1", "r2"):
            problem.add_reflector(name, cost=2.0, fanout=2)
            problem.add_stream_edge("s", name, 0.02, 0.5)
        problem.add_sink("d")
        for name in ("r1", "r2"):
            problem.add_delivery_edge(name, "d", 0.02, 0.5)
        problem.add_demand("d", "s", success_threshold=0.9)
        return problem

    def test_feasible_subsets_unique_despite_duplicate_candidates(self):
        from repro.baselines.exact import _feasible_subsets

        clean = self._two_reflector_problem()
        dirty = self._two_reflector_problem()
        # The public API rejects duplicate delivery edges, so corrupt the
        # per-sink index directly -- the state a buggy ingester would leave.
        dirty._sink_reflectors["d"].append("r1")
        assert dirty.candidate_reflectors(dirty.demands[0]).count("r1") == 2

        demand = clean.demands[0]
        clean_subsets = _feasible_subsets(clean, demand, max_subset_size=3)
        dirty_subsets = _feasible_subsets(dirty, dirty.demands[0], max_subset_size=3)
        assert dirty_subsets == clean_subsets
        assert len(dirty_subsets) == len(set(dirty_subsets))
        assert all(len(set(subset)) == len(subset) for subset in dirty_subsets)

    def test_nodes_explored_not_inflated_by_duplicates(self):
        clean = self._two_reflector_problem()
        dirty = self._two_reflector_problem()
        dirty._sink_reflectors["d"].append("r2")
        clean_result = exact_design(clean)
        dirty_result = exact_design(dirty)
        assert dirty_result.nodes_explored == clean_result.nodes_explored
        assert dirty_result.optimal_cost == pytest.approx(clean_result.optimal_cost)
