"""Hypothesis property tests for the sharded pipeline's invariants.

The contracts under test (see ``docs/scaling.md``):

* the partitioner covers every sink exactly once, for every partitioner and
  shard-count combination;
* per-demand delivered weight never gets *worse* through stitching: the
  merged design's weight fraction is at least ``min(shard value, 1.0)`` for
  every demand (so weight violations are bounded by the worst shard);
* the stitcher's fanout reconciliation never makes the union worse, and when
  no load-bearing copy pins an overloaded reflector it bounds the merged
  violation by the worst single shard's (or the bound itself);
* with repair enabled, every demand is satisfied post-stitch on feasible
  instances;
* the merged design is a pure function of (problem, seed): ``jobs=1`` and
  ``jobs=N`` produce bit-identical solutions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import DesignRequest, get_designer
from repro.core.algorithm import DesignParameters
from repro.scale import build_partition, merge_shard_solutions, stitch_solutions
from repro.workloads import (
    InternetScaleConfig,
    RandomInstanceConfig,
    generate_internet_scale_problem,
    random_problem,
)

#: Workload-shaped instances: enough fanout headroom that reconciliation has
#: room to work with (the generators enforce feasibility either way).
def _random_instance(seed: int, sinks: int, reflectors: int):
    return random_problem(
        RandomInstanceConfig(
            num_streams=2,
            num_reflectors=reflectors,
            num_sinks=sinks,
            fanout_range=(6, 14),
            num_colors=3,
        ),
        rng=seed,
    )


def _scale_instance(seed: int, sinks: int):
    problem, _registry = generate_internet_scale_problem(
        InternetScaleConfig(num_sinks=sinks, sinks_per_metro=10), rng=seed
    )
    return problem


@st.composite
def problems(draw):
    """A small workload-shaped instance from either generator family."""
    seed = draw(st.integers(0, 1_000))
    if draw(st.booleans()):
        return _scale_instance(seed, sinks=draw(st.integers(20, 60)))
    return _random_instance(
        seed,
        sinks=draw(st.integers(8, 24)),
        reflectors=draw(st.integers(5, 10)),
    )


@st.composite
def partitioned_problems(draw):
    problem = draw(problems())
    partitioner = draw(st.sampled_from(["auto", "metro", "isp", "hash"]))
    shards = draw(st.one_of(st.just("auto"), st.integers(1, 6)))
    return problem, partitioner, shards


class TestPartitionProperties:
    @settings(max_examples=25, deadline=None)
    @given(partitioned_problems())
    def test_shards_cover_all_sinks_exactly_once(self, case):
        problem, partitioner, shards = case
        plan = build_partition(problem, partitioner=partitioner, shards=shards)
        placed = [sink for shard in plan.shards for sink in shard.sinks]
        assert sorted(placed) == sorted(problem.sinks)
        keys = [key for shard in plan.shards for key in shard.demand_keys]
        assert sorted(keys) == sorted(d.key for d in problem.demands)

    @settings(max_examples=15, deadline=None)
    @given(partitioned_problems())
    def test_shard_problems_are_self_contained_and_feasible(self, case):
        problem, partitioner, shards = case
        plan = build_partition(problem, partitioner=partitioner, shards=shards)
        for shard in plan.shards:
            shard.problem.validate()
            assert shard.problem.feasibility_report() == []


class TestStitchProperties:
    @settings(max_examples=15, deadline=None)
    @given(problems(), st.integers(2, 5), st.integers(0, 10_000))
    def test_stitch_bounds_violations_by_the_worst_shard(
        self, problem, shards, seed
    ):
        plan = build_partition(problem, shards=shards)
        solutions = []
        shard_weight_fraction: dict[tuple[str, str], float] = {}
        shard_max_factor = 0.0
        for index, shard in enumerate(plan.shards):
            result = get_designer("greedy").design(
                DesignRequest(
                    problem=shard.problem,
                    parameters=DesignParameters(seed=seed + index),
                )
            )
            solutions.append(result.solution)
            for demand in shard.problem.demands:
                shard_weight_fraction[demand.key] = result.solution.weight_satisfaction(
                    demand
                )
            shard_max_factor = max(
                shard_max_factor, result.solution.max_fanout_factor()
            )
        merged_factor = merge_shard_solutions(problem, solutions).max_fanout_factor()
        stitched, report = stitch_solutions(problem, plan, solutions)

        # Weight: stitching never makes a demand worse than its shard design
        # (repair may only improve it).
        for demand in problem.demands:
            assert stitched.weight_satisfaction(demand) >= (
                min(shard_weight_fraction[demand.key], 1.0) - 1e-9
            )

        # Fanout: the stitcher never makes the union worse, and when every
        # overload was resolvable (no load-bearing copy pinned an overloaded
        # reflector) the merged violation is bounded by the worst single
        # shard (or the bound itself); the global repair pass may then use
        # the documented repair slack, never more.
        assert stitched.max_fanout_factor() <= max(merged_factor, 1.0) + 1e-9
        limit = max(1.0, shard_max_factor)
        if report.demands_repaired:
            limit = max(limit, 4.0)
        if report.unresolved_overloads == 0:
            assert stitched.max_fanout_factor() <= limit + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(problems(), st.integers(0, 10_000))
    def test_every_demand_satisfied_post_stitch(self, problem, seed):
        result = get_designer("sharded:greedy").design(
            DesignRequest(
                problem=problem,
                strategy="sharded:greedy",
                parameters=DesignParameters(seed=seed),
                options={"shards": 3},
            )
        )
        assert result.audit.unserved_demands == 0
        assert result.audit.min_weight_fraction >= 1.0 - 1e-9

    @settings(max_examples=8, deadline=None)
    @given(problems(), st.integers(0, 10_000), st.sampled_from([2, 3]))
    def test_jobs_are_invisible_in_the_merged_solution(self, problem, seed, jobs):
        def run(n):
            return get_designer("sharded:greedy").design(
                DesignRequest(
                    problem=problem,
                    strategy="sharded:greedy",
                    parameters=DesignParameters(seed=seed),
                    options={"shards": 3, "jobs": n},
                )
            ).solution

        serial, parallel = run(1), run(jobs)
        assert serial.assignments == parallel.assignments
        assert serial.built_reflectors == parallel.built_reflectors
        assert serial.stream_deliveries == parallel.stream_deliveries
