"""The AS/geo workload: real metros, multi-homed carriers, feasibility.

Pins the structural guarantees the A1 adversary bench and the extended
(ISP-diversity) pipeline lean on: population-proportional sink allocation,
every sink's candidate set spanning at least two carriers, hyphen-free metro
slugs so ``infer_clusters`` recovers metros, and feasibility by construction
-- including under color constraints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.scenarios import infer_clusters
from repro.workloads import AsGeoConfig, generate_as_geo_problem
from repro.workloads.as_geo import CARRIERS, METROS, great_circle_km


@pytest.fixture(scope="module")
def instance():
    config = AsGeoConfig(num_sinks=120, num_metros=12)
    return config, *generate_as_geo_problem(config, rng=0)


class TestTables:
    def test_metro_slugs_are_hyphen_free(self):
        for slug, *_ in METROS:
            assert "-" not in slug and slug == slug.lower()

    def test_every_region_multi_homed(self):
        regions = {region for *_, region in METROS}
        for region in regions:
            covering = [name for name, footprint in CARRIERS if region in footprint]
            assert len(covering) >= 2, region

    def test_great_circle_sanity(self):
        # London -> New York is about 5570 km.
        km = float(great_circle_km(51.51, -0.13, 40.71, -74.01))
        assert 5400 < km < 5750
        assert float(great_circle_km(35.68, 139.69, 35.68, 139.69)) == 0.0


class TestGenerator:
    def test_feasible_by_construction(self, instance):
        _, problem, _registry = instance
        assert problem.feasibility_report() == []

    def test_population_proportional_allocation(self, instance):
        config, problem, _ = instance
        per_metro = {}
        for sink in problem.sinks:
            metro = sink.split("-", 1)[0]
            per_metro[metro] = per_metro.get(metro, 0) + 1
        assert len(per_metro) == config.num_metros
        assert all(count >= 1 for count in per_metro.values())
        # Tokyo (37.4M) must clearly out-host Karachi (17.6M) and be the max.
        assert per_metro["tokyo"] > 1.5 * per_metro["karachi"]
        assert per_metro["tokyo"] == max(per_metro.values())
        assert sum(per_metro.values()) == config.num_sinks

    def test_clusters_recover_metros(self, instance):
        config, problem, _ = instance
        clusters = infer_clusters(problem)
        assert len(clusters) == config.num_metros
        for members in clusters.values():
            assert any(member.split("-", 1)[1].startswith("r") for member in members)

    def test_every_sink_candidate_set_spans_two_carriers(self, instance):
        _, problem, _ = instance
        for demand in problem.demands:
            carriers = {
                problem.color(reflector)
                for reflector in problem.candidate_reflectors(demand)
            }
            assert len(carriers) >= 2, demand.sink

    def test_carriers_registered(self, instance):
        _, problem, registry = instance
        names = set(registry.names())
        assert names == {name for name, _ in CARRIERS}
        used = {problem.color(reflector) for reflector in problem.reflectors}
        assert used <= names

    def test_deterministic(self):
        config = AsGeoConfig(num_sinks=60, num_metros=8)
        first, _ = generate_as_geo_problem(config, rng=42)
        second, _ = generate_as_geo_problem(config, rng=42)
        assert list(first.sinks) == list(second.sinks)
        assert list(first.reflectors) == list(second.reflectors)
        first_demands = [
            (d.sink, d.stream, d.success_threshold) for d in first.demands
        ]
        second_demands = [
            (d.sink, d.stream, d.success_threshold) for d in second.demands
        ]
        assert first_demands == second_demands

    def test_rng_accepts_generator(self):
        config = AsGeoConfig(num_sinks=60, num_metros=8)
        via_int, _ = generate_as_geo_problem(config, rng=7)
        via_gen, _ = generate_as_geo_problem(config, rng=np.random.default_rng(7))
        assert list(via_int.sinks) == list(via_gen.sinks)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sinks": 0},
            {"num_metros": len(METROS) + 1},
            {"num_sinks": 5, "num_metros": 8},
            {"reflectors_per_metro": 1},
            {"carriers_per_metro": 1},
            {"candidates_per_sink": 1},
            {"quality_mix": (0.5, 0.5, 0.5)},
            {"fanout_headroom": 0.0},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ValueError):
            AsGeoConfig(**kwargs)
