"""Property-based tests (hypothesis) for the simulation + rounding invariants.

The four core invariants of the reliability stack, checked over randomly
generated inputs:

1. reconstruction never loses more than the best single copy;
2. delivered quality is monotone in link reliability (common random numbers);
3. the worst windowed loss bounds the session mean from above;
4. LP randomized rounding never violates the capacity/fanout guarantees on
   random tiny instances (Lemma 4.6's factor-2 bound).

Plus distribution/packing invariants of the batched samplers that the
Monte-Carlo engine's correctness rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import build_formulation
from repro.core.problem import OverlayDesignProblem
from repro.core.rounding import RoundingParameters, audit_rounding, round_solution
from repro.core.solution import OverlaySolution
from repro.network.loss import BernoulliLossModel, sample_bernoulli_positions
from repro.simulation import SimulationConfig, simulate_solution
from repro.simulation.packets import loss_rate, window_loss_rates, windowed_loss_matrix
from repro.simulation.reconstruction import post_reconstruction_loss, reconstruct
from repro.workloads import RandomInstanceConfig, random_problem

_SETTINGS = settings(max_examples=25)


def _two_path_problem(loss_a: float, loss_b: float) -> OverlayDesignProblem:
    problem = OverlayDesignProblem()
    problem.add_stream("s")
    for name, loss in (("ra", loss_a), ("rb", loss_b)):
        problem.add_reflector(name, cost=1.0, fanout=4)
        problem.add_stream_edge("s", name, loss_probability=0.01, cost=1.0)
    problem.add_sink("d")
    problem.add_delivery_edge("ra", "d", loss_probability=loss_a, cost=1.0)
    problem.add_delivery_edge("rb", "d", loss_probability=loss_b, cost=1.0)
    problem.add_demand("d", "s", success_threshold=0.5)
    return problem


class TestReconstructionInvariants:
    @_SETTINGS
    @given(
        st.integers(1, 5),
        st.integers(1, 300),
        st.floats(0.0, 1.0),
        st.integers(0, 10_000),
    )
    def test_loss_never_exceeds_best_copy(self, paths, packets, rate, seed):
        """Reconstruction loss <= min per-copy loss (any copy can fill a hole)."""
        rng = np.random.default_rng(seed)
        copies = [~(rng.random(packets) < rate) for _ in range(paths)]
        combined = post_reconstruction_loss(copies)
        per_copy = [loss_rate(received) for received in copies]
        assert combined <= min(per_copy) + 1e-12
        assert 0.0 <= combined <= 1.0

    @_SETTINGS
    @given(st.integers(1, 4), st.integers(1, 200), st.integers(0, 10_000))
    def test_reconstructed_mask_is_union(self, paths, packets, seed):
        rng = np.random.default_rng(seed)
        copies = [rng.random(packets) < 0.4 for _ in range(paths)]
        received = reconstruct([~lost for lost in copies])
        for lost in copies:
            assert (received >= ~lost).all()


class TestMonotonicityInvariants:
    @_SETTINGS
    @given(
        st.floats(0.0, 0.9),
        st.floats(0.0, 0.9),
        st.floats(0.001, 0.1),
        st.integers(0, 10_000),
    )
    def test_quality_monotone_in_link_reliability(self, loss_a, loss_b, delta, seed):
        """Lowering a link's loss never lowers delivered quality (CRN).

        Both runs replay the same uniforms (identical draw order), so the
        better link's loss set is a subset of the worse link's and the
        measured loss is deterministically ordered -- no sampling slack.
        """
        better = _two_path_problem(loss_a, loss_b)
        worse = _two_path_problem(min(loss_a + delta, 1.0), loss_b)
        config = SimulationConfig(num_packets=400, window=80)
        results = []
        for problem in (better, worse):
            solution = OverlaySolution.from_assignments(
                problem, {("d", "s"): ["ra", "rb"]}
            )
            report = simulate_solution(
                problem, solution, config, rng=np.random.default_rng(seed)
            )
            results.append(report.result_for(("d", "s")).loss_rate)
        assert results[0] <= results[1] + 1e-12

    @_SETTINGS
    @given(st.integers(0, 10_000))
    def test_extra_path_never_hurts(self, seed):
        problem = _two_path_problem(0.3, 0.4)
        config = SimulationConfig(num_packets=300, window=60)
        single = OverlaySolution.from_assignments(problem, {("d", "s"): ["ra"]})
        double = OverlaySolution.from_assignments(problem, {("d", "s"): ["ra", "rb"]})
        loss_single = (
            simulate_solution(problem, single, config, rng=np.random.default_rng(seed))
            .result_for(("d", "s"))
            .loss_rate
        )
        loss_double = (
            simulate_solution(problem, double, config, rng=np.random.default_rng(seed))
            .result_for(("d", "s"))
            .loss_rate
        )
        # Same generator, but the two-path run draws an extra stream; compare
        # statistically impossible orderings only: the double design replays
        # ra's draws first, so its loss cannot exceed the single design's.
        assert loss_double <= loss_single + 1e-12


class TestWindowInvariants:
    @_SETTINGS
    @given(st.integers(1, 400), st.integers(1, 100), st.integers(0, 10_000))
    def test_worst_window_bounds_session_mean(self, packets, window, seed):
        """max windowed loss >= session loss (the mean of a set <= its max)."""
        rng = np.random.default_rng(seed)
        received = rng.random(packets) < rng.random()
        rates = window_loss_rates(received, window)
        assert rates.max() >= loss_rate(received) - 1e-12
        assert rates.min() <= loss_rate(received) + 1e-12

    @_SETTINGS
    @given(st.integers(1, 300), st.integers(1, 64), st.integers(0, 10_000))
    def test_windowed_matrix_matches_scalar_helper(self, packets, window, seed):
        rng = np.random.default_rng(seed)
        lost = rng.random((3, packets)) < 0.3
        matrix = windowed_loss_matrix(lost, window)
        for row in range(3):
            assert np.allclose(matrix[row], window_loss_rates(~lost[row], window))


class TestRoundingInvariants:
    @settings(max_examples=10)
    @given(st.integers(0, 10_000))
    def test_rounding_never_violates_fanout_bound(self, seed):
        """Lemma 4.6: rounded designs stay within twice the fanout bound."""
        problem = random_problem(
            RandomInstanceConfig(num_streams=1, num_reflectors=5, num_sinks=6),
            rng=seed % 997,
        )
        formulation = build_formulation(problem)
        fractional = formulation.fractional_solution(formulation.solve()).support()
        rounded = round_solution(
            problem, fractional, RoundingParameters(c=64.0, seed=seed)
        )
        audit = audit_rounding(problem, rounded)
        assert audit.max_fanout_factor <= 2.0 + 1e-9


class TestSamplerInvariants:
    @_SETTINGS
    @given(
        st.floats(1e-4, 0.99),
        st.integers(1, 40),
        st.integers(1, 600),
        st.integers(0, 10_000),
    )
    def test_positions_valid_and_increasing_per_trial(self, p, trials, length, seed):
        rng = np.random.default_rng(seed)
        trial_idx, positions = sample_bernoulli_positions(p, trials, length, rng)
        assert ((0 <= positions) & (positions < length)).all()
        assert ((0 <= trial_idx) & (trial_idx < trials)).all()
        order = np.lexsort((positions, trial_idx))
        sorted_positions = positions[order]
        same_trial = np.diff(trial_idx[order]) == 0
        assert (np.diff(sorted_positions)[same_trial] > 0).all()

    @_SETTINGS
    @given(st.floats(1e-3, 0.99), st.integers(1, 613), st.integers(0, 10_000))
    def test_packed_matrix_has_no_stray_bits(self, p, length, seed):
        """Pad bits beyond num_packets stay zero for every probability."""
        model = BernoulliLossModel()
        packed = model.sample_packed_loss_matrix(
            np.array([p]), 8, length, np.random.default_rng(seed)
        )
        unpacked = np.unpackbits(packed, axis=-1, bitorder="little")
        assert not unpacked[..., length:].any()
        assert unpacked.sum() == int(np.bitwise_count(packed).sum())

    @settings(max_examples=15)
    @given(st.floats(0.005, 0.4), st.integers(0, 10_000))
    def test_packed_rate_matches_probability(self, p, seed):
        model = BernoulliLossModel()
        trials, length = 200, 500
        packed = model.sample_packed_loss_matrix(
            np.array([p]), trials, length, np.random.default_rng(seed)
        )
        rate = float(np.bitwise_count(packed).sum()) / (trials * length)
        tolerance = 6.0 * np.sqrt(p * (1 - p) / (trials * length)) + 1e-9
        assert rate == pytest.approx(p, abs=tolerance)
