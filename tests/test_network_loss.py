"""Tests for the link-loss models (repro.network.loss)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.loss import (
    BernoulliLossModel,
    GilbertElliottLossModel,
    IspOutageLossModel,
)


class TestBernoulli:
    def test_rate_matches_probability(self, rng):
        model = BernoulliLossModel()
        losses = model.sample_losses(0.2, 50_000, rng)
        assert losses.dtype == bool
        assert losses.mean() == pytest.approx(0.2, abs=0.01)

    def test_extremes(self, rng):
        model = BernoulliLossModel()
        assert not model.sample_losses(0.0, 1000, rng).any()
        assert model.sample_losses(1.0, 1000, rng).all()

    def test_zero_packets(self, rng):
        assert BernoulliLossModel().sample_losses(0.5, 0, rng).size == 0

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            BernoulliLossModel().sample_losses(1.5, 10, rng)
        with pytest.raises(ValueError):
            BernoulliLossModel().sample_losses(0.5, -1, rng)


class TestGilbertElliott:
    def test_average_rate_approximately_preserved(self, rng):
        model = GilbertElliottLossModel(mean_burst_length=25.0, bad_state_fraction=0.1)
        losses = model.sample_losses(0.05, 80_000, rng)
        assert losses.mean() == pytest.approx(0.05, abs=0.01)

    def test_burstier_than_bernoulli(self, rng):
        """Consecutive losses should be much more frequent than under Bernoulli."""
        probability = 0.05
        ge = GilbertElliottLossModel(mean_burst_length=30.0, bad_state_fraction=0.08)
        ge_losses = ge.sample_losses(probability, 60_000, rng)
        bern_losses = BernoulliLossModel().sample_losses(probability, 60_000, rng)

        def consecutive_pairs(mask: np.ndarray) -> float:
            return float(np.mean(mask[1:] & mask[:-1]))

        assert consecutive_pairs(ge_losses) > 2.0 * consecutive_pairs(bern_losses)

    def test_extremes(self, rng):
        model = GilbertElliottLossModel()
        assert not model.sample_losses(0.0, 500, rng).any()
        assert model.sample_losses(1.0, 500, rng).all()


class TestIspOutage:
    NODE_ISP = {"src": "ispA", "r1": "ispA", "r2": "ispB", "d": "ispB"}

    def test_links_in_failed_isp_lose_everything(self, rng):
        model = IspOutageLossModel(node_isp=self.NODE_ISP, failed_isps={"ispA"})
        losses = model.sample_losses(0.01, 1000, rng, link=("src", "r1"))
        assert losses.all()
        # Link whose endpoints are both in ispB is unaffected (just base loss).
        clean = model.sample_losses(0.01, 5000, rng, link=("r2", "d"))
        assert clean.mean() < 0.05

    def test_link_touching_failed_isp_on_either_end_is_down(self, rng):
        model = IspOutageLossModel(node_isp=self.NODE_ISP, failed_isps={"ispB"})
        assert model.sample_losses(0.01, 100, rng, link=("r1", "d")).all()
        assert model.sample_losses(0.01, 100, rng, link=("r2", "d")).all()

    def test_no_failures_delegates_to_base(self, rng):
        model = IspOutageLossModel(node_isp=self.NODE_ISP)
        losses = model.sample_losses(0.3, 30_000, rng, link=("src", "r1"))
        assert losses.mean() == pytest.approx(0.3, abs=0.02)

    def test_unknown_link_unaffected(self, rng):
        model = IspOutageLossModel(node_isp=self.NODE_ISP, failed_isps={"ispA"})
        losses = model.sample_losses(0.1, 10_000, rng, link=("x", "y"))
        assert losses.mean() == pytest.approx(0.1, abs=0.02)
